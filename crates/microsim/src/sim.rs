//! The microscopic network simulator.
//!
//! Stands in for SUMO in the paper's evaluation: vehicles follow the
//! Krauss model along dedicated per-movement lanes, junctions serve green
//! links with realistic discharge headways and a fixed box-traversal time,
//! ambers let the box clear before the next phase, and queue detectors
//! report the per-movement counts the controllers feed on.
//!
//! ## Physical layout
//!
//! Every road carries one single-file lane per turning movement at its
//! downstream junction (the paper's dedicated turning lanes, which rule out
//! head-of-line blocking); boundary exit roads carry enough lanes to match
//! their storage capacity. With the default 300 m roads and 7.5 m jam
//! spacing, 3 lanes hold 120 vehicles — exactly the paper's `W`.
//!
//! ## Crossing protocol
//!
//! The head vehicle of a lane is *released* when its movement is green,
//! the link has service credit (rate `µ`), the destination road is below
//! its capacity `W`, and the destination lane has room (counting vehicles
//! already crossing toward it). A released head drives through the stop
//! line, spends `crossing_ticks` in the junction box, then lands at the
//! start of its destination lane. During amber no releases happen but the
//! box keeps clearing — which is why the paper's 4 s amber covers the 3 s
//! box traversal.
//!
//! ## Step pipeline
//!
//! One call to [`MicroSim::step_into`] runs, in order: sense (write
//! per-intersection observations from the incremental detector counters)
//! → decide (one controller per intersection; shard-parallel under
//! `Parallelism::Rayon`) → signal refresh → box countdown → head
//! release (serial — crossings mutate shared junction/road state) →
//! car-following for the remaining vehicles (streaming over the
//! network-wide lane arena; the expensive phase, shard-parallel under
//! Rayon) → landings → insertions. The head and car-following phases
//! walk the arena's occupancy-ordered active-road list, so empty roads
//! cost zero cache lines (see [`crate::road`]). Waiting is accumulated
//! *inside* the
//! car-following pass (per-vehicle accumulators; see
//! [`crate::road`]), so there is no separate waiting phase. See the crate
//! docs' "Performance architecture" section for the invariants each phase
//! relies on.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::{
    parallel, parallel::ControllerSlot, IncomingId, LinkId, ObservationBuffer, PhaseDecision,
    QueueObservation, SignalController, Tick,
};
use utilbp_metrics::{VehicleId, WaitingLedger};
use utilbp_netgen::{Arrival, IntersectionId, NetworkTopology, RoadId, Route};

use crate::config::{Fidelity, MicroSimConfig};
use crate::krauss::{next_speed, LeaderInfo};
use crate::road::{
    advance_followers, advance_followers_batched_road, advance_head, DawdleSource, FollowerShard,
    HeadMode, LaneView, MovementCounters, NetworkLanes, RoadSpan, SensorSpec, VehicleArena,
    LINK_NONE,
};

/// A vehicle traversing the junction box: its arena slot plus the wait
/// accumulator riding along (a boxed vehicle is moving, not waiting, but
/// its earlier waiting must survive to the ledger flush at completion).
#[derive(Debug, Clone)]
struct Crossing {
    slot: u32,
    wait: u64,
    /// Remaining box ticks; 0 means ready to land (may be held if the
    /// destination lane entry is blocked).
    remaining: u64,
    dest_road: usize,
    dest_lane: usize,
}

#[derive(Debug, Clone, Default)]
struct JunctionSim {
    in_box: Vec<Crossing>,
    /// Per-link service credit (rate `µ` accumulates while green).
    credit: Vec<f64>,
    /// Per-link green flag for the current step.
    active: Vec<bool>,
}

#[derive(Debug, Clone)]
struct RoadSim {
    // Vehicle state lives in the network-wide [`NetworkLanes`] arena on
    // `MicroSim` (road index == `RoadSim` index), not here: the
    // car-following phase streams the whole *network* through contiguous
    // storage instead of chasing per-road allocations.
    length: f64,
    capacity: u32,
    /// Whether the road is closed to *entering* traffic (scenario
    /// events). Vehicles already on a closed road keep driving and may
    /// leave it; no head release targets it and no insertion lands on it.
    closed: bool,
    /// Vehicles on the lanes plus reservations by vehicles crossing toward
    /// this road.
    occupancy: u32,
    /// Cumulative vehicles that have entered the road's lanes (boundary
    /// insertions + junction-box landings) — a monotone counter that lets
    /// callers observe where traffic actually went (e.g. detour roads
    /// after a replanned closure) without per-road event probes.
    entered: u64,
    /// Per-lane count of vehicles currently in a junction box heading for
    /// that lane — the reservations [`MicroSim::dest_lane_has_room`]
    /// consults in O(1) instead of scanning every junction's box.
    pending: Vec<u32>,
    /// Detector geometry shared by this road's lanes.
    spec: SensorSpec,
    /// Per-lane count of vehicles inside the detection window — dense, so
    /// the sense phase reads a short array instead of walking `Lane`
    /// structs. Maintained from the deltas the advance functions return.
    lane_detected: Vec<u32>,
    /// Per-lane halted-vehicle count (whole lane), dense like
    /// `lane_detected`.
    lane_halted: Vec<u32>,
    /// Σ `lane_detected` — the `PresenceNearJunction` outgoing sensor in
    /// O(1).
    detected_sum: u32,
    /// Σ `lane_halted` — the `HaltedWholeRoad` outgoing sensor in O(1).
    halted_sum: u32,
    /// Per-(road, link) movement counters, maintained only under
    /// [`LaneDiscipline::SharedMixed`](crate::LaneDiscipline) for roads
    /// feeding an intersection — the O(1) replacement for the mixed-lane
    /// per-decision rescans. `None` under dedicated lanes (the per-lane
    /// counters already answer per-movement queries) and on exit roads.
    move_counts: Option<MovementCounters>,
    /// This road's dawdling stream. Car-following noise is drawn per road
    /// (not from one global generator) so the per-road phase can shard
    /// across threads while staying bit-identical to serial execution.
    rng: SmallRng,
}

impl RoadSim {
    /// Registers a vehicle appearing on `lane` (landing or insertion) in
    /// the dense sensor counters.
    fn sensor_add(&mut self, lane: usize, pos: f64, speed: f64) {
        if pos >= self.spec.detect_from {
            self.lane_detected[lane] += 1;
            self.detected_sum += 1;
        }
        if speed < self.spec.halt_speed {
            self.lane_halted[lane] += 1;
            self.halted_sum += 1;
        }
    }
}

/// A vehicle waiting outside a full or closed boundary entry. Its backlog
/// dwell is credited to its wait accumulator in one shot when it finally
/// inserts (`now − since`), so backlogs are never scanned per tick.
#[derive(Debug, Clone)]
struct Backlogged {
    id: VehicleId,
    route: Arc<Route>,
    since: Tick,
}

/// What happened during one microscopic step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// The instant that was simulated.
    pub tick: Tick,
    /// The decision applied at each intersection, indexed by
    /// `IntersectionId`.
    pub decisions: Vec<PhaseDecision>,
    /// Stop-line crossings started this step.
    pub crossings: u32,
    /// Vehicles that left the network this step.
    pub completed: u32,
    /// Vehicles inserted at boundary entries this step (excluding those
    /// pushed to a backlog).
    pub injected: u32,
}

impl StepReport {
    /// An empty report, ready to be passed to
    /// [`MicroSim::step_into`] — its buffers are reused across ticks.
    pub fn empty() -> Self {
        StepReport {
            tick: Tick::ZERO,
            decisions: Vec::new(),
            crossings: 0,
            completed: 0,
            injected: 0,
        }
    }
}

/// Cumulative wall-clock seconds spent in each phase group of the step
/// pipeline, filled by [`MicroSim::step_into_timed`]. Lets the perf
/// harness attribute throughput wins to phases instead of guessing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Sense + controller decide + signal refresh.
    pub decide: f64,
    /// Box countdown + head release + follower car-following (the
    /// physics).
    pub car_following: f64,
    /// Junction-box landings.
    pub landings: f64,
    /// Insertions, backlog drain, and waiting/report bookkeeping.
    pub waiting: f64,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> f64 {
        self.decide + self.car_following + self.landings + self.waiting
    }
}

/// Accumulates phase laps into a [`PhaseTimings`]; a no-op when detached
/// (the untimed step path takes no `Instant` readings at all).
struct PhaseStopwatch<'a> {
    timings: Option<&'a mut PhaseTimings>,
    last: Option<Instant>,
}

impl<'a> PhaseStopwatch<'a> {
    fn new(timings: Option<&'a mut PhaseTimings>) -> Self {
        let last = timings.as_ref().map(|_| Instant::now());
        PhaseStopwatch { timings, last }
    }

    fn lap(&mut self, pick: fn(&mut PhaseTimings) -> &mut f64) {
        if let (Some(t), Some(last)) = (self.timings.as_deref_mut(), self.last) {
            let now = Instant::now();
            *pick(t) += now.duration_since(last).as_secs_f64();
            self.last = Some(now);
        }
    }
}

/// The microscopic simulator (SUMO substitute).
///
/// # Examples
///
/// ```
/// use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
/// use utilbp_microsim::{MicroSim, MicroSimConfig};
/// use utilbp_netgen::{
///     DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec,
///     Pattern,
/// };
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let controllers = (0..9)
///     .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
///     .collect();
/// let mut sim = MicroSim::new(
///     grid.topology().clone(),
///     controllers,
///     MicroSimConfig::default(),
/// );
/// let mut demand = DemandGenerator::new(
///     &grid,
///     DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(120))),
///     7,
/// );
/// for k in 0..120 {
///     let arrivals = demand.poll(&grid, Tick::new(k));
///     sim.step(arrivals);
/// }
/// assert!(sim.vehicles_in_network() > 0);
/// ```
pub struct MicroSim {
    topology: NetworkTopology,
    config: MicroSimConfig,
    controllers: Vec<ControllerSlot>,
    roads: Vec<RoadSim>,
    /// Every lane of every road in one network-wide segmented SoA arena,
    /// with the sorted active-road list the head and follower phases
    /// iterate (empty roads cost zero cache lines). Indexed by road.
    net: NetworkLanes,
    junctions: Vec<JunctionSim>,
    /// Per-journey vehicle state (id, route, cursor), slab-allocated.
    arena: VehicleArena,
    backlogs: Vec<VecDeque<Backlogged>>,
    ledger: WaitingLedger,
    now: Tick,
    total_crossings: u64,
    // Reusable per-step scratch (no steady-state allocation).
    /// One observation per intersection, rewritten every tick.
    obs_buf: ObservationBuffer,
    /// Drain buffer for the landing phase (empty between steps).
    landing_scratch: Vec<Crossing>,
    // Lookups (indices are plain usizes for borrow-free hot loops).
    /// Per road: destination intersection index, if internal/entry.
    road_dest: Vec<Option<usize>>,
    /// Per road, per lane: the movement link (at the destination
    /// intersection) this lane feeds; `None` on exit-road lanes.
    lane_links: Vec<Vec<Option<LinkId>>>,
    /// Per road: lane index by `LinkId::index()` at the destination
    /// intersection (`usize::MAX` when not applicable).
    lane_index_by_link: Vec<Vec<usize>>,
    /// Per intersection, per link: incoming road index.
    link_in_road: Vec<Vec<usize>>,
    /// Per intersection, per link: outgoing road index.
    link_out_road: Vec<Vec<usize>>,
    /// Per road, per lane: whether the lane's movement is green *with*
    /// service credit this tick — precomputed in the signal-refresh pass
    /// (which visits every link anyway) so the head phase reads one local
    /// flag instead of two scattered junction lookups per lane. Only
    /// maintained under dedicated lanes, where the lane→link map is
    /// static; a link's credit can drop below 1 mid-phase only by its own
    /// lane's release, and each lane is visited once, so the flag stays
    /// exact for the whole head phase.
    lane_green: Vec<Vec<bool>>,
}

impl std::fmt::Debug for MicroSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroSim")
            .field("now", &self.now)
            .field("roads", &self.roads.len())
            .field("junctions", &self.junctions.len())
            .field("vehicles", &self.vehicles_in_network())
            .field("total_crossings", &self.total_crossings)
            .finish_non_exhaustive()
    }
}

impl MicroSim {
    /// Creates a simulator over `topology`, one controller per intersection
    /// (indexed by [`IntersectionId`]).
    ///
    /// # Panics
    ///
    /// Panics if the controller count does not match the intersection
    /// count or if `config` fails [`MicroSimConfig::validate`].
    pub fn new(
        topology: NetworkTopology,
        controllers: Vec<Box<dyn SignalController>>,
        config: MicroSimConfig,
    ) -> Self {
        assert_eq!(
            controllers.len(),
            topology.num_intersections(),
            "one controller per intersection"
        );
        if let Err(msg) = config.validate() {
            panic!("invalid microsim config: {msg}");
        }

        let num_roads = topology.num_roads();
        let mut road_dest = vec![None; num_roads];
        let mut lane_links: Vec<Vec<Option<LinkId>>> = vec![Vec::new(); num_roads];
        let mut lane_index_by_link: Vec<Vec<usize>> = vec![Vec::new(); num_roads];

        for r in topology.road_ids() {
            let road = topology.road(r);
            match road.dest() {
                Some((i, arm)) => {
                    road_dest[r.index()] = Some(i.index());
                    let layout = topology.intersection(i).layout();
                    let links = layout.links_from(arm);
                    lane_links[r.index()] = links.iter().map(|&l| Some(l)).collect();
                    let mut by_link = vec![usize::MAX; layout.num_links()];
                    for (lane, &l) in links.iter().enumerate() {
                        by_link[l.index()] = lane;
                    }
                    lane_index_by_link[r.index()] = by_link;
                }
                None => {
                    // Exit road: enough lanes to hold the declared W.
                    let lane_cap =
                        (road.length_m() / config.jam_spacing_m()).floor().max(1.0) as u32;
                    let lanes = road.capacity().div_ceil(lane_cap).max(1) as usize;
                    lane_links[r.index()] = vec![None; lanes];
                }
            }
        }

        let mut link_in_road = Vec::with_capacity(topology.num_intersections());
        let mut link_out_road = Vec::with_capacity(topology.num_intersections());
        let mut junctions = Vec::with_capacity(topology.num_intersections());
        for i in topology.intersection_ids() {
            let node = topology.intersection(i);
            let layout = node.layout();
            link_in_road.push(
                layout
                    .link_ids()
                    .map(|l| node.incoming_road(layout.link(l).from()).index())
                    .collect(),
            );
            link_out_road.push(
                layout
                    .link_ids()
                    .map(|l| node.outgoing_road(layout.link(l).to()).index())
                    .collect(),
            );
            junctions.push(JunctionSim {
                in_box: Vec::new(),
                credit: vec![0.0; layout.num_links()],
                active: vec![false; layout.num_links()],
            });
        }

        // Resident vehicles per lane are bounded by the road geometry;
        // sizing the network arena at the plateau up front keeps lane
        // growth out of the steady-state allocation profile.
        let shapes: Vec<(usize, usize)> = topology
            .road_ids()
            .map(|r| {
                let road = topology.road(r);
                let lane_capacity = (road.length_m() / config.jam_spacing_m()).floor() as usize + 1;
                (lane_links[r.index()].len(), lane_capacity)
            })
            .collect();
        let net = NetworkLanes::new(&shapes);

        let seed = config.seed;
        let roads: Vec<RoadSim> = topology
            .road_ids()
            .map(|r| {
                let road = topology.road(r);
                let num_lanes = lane_links[r.index()].len();
                RoadSim {
                    length: road.length_m(),
                    capacity: road.capacity(),
                    closed: false,
                    occupancy: 0,
                    entered: 0,
                    pending: vec![0; num_lanes],
                    spec: SensorSpec::for_road(road.length_m(), &config),
                    lane_detected: vec![0; num_lanes],
                    lane_halted: vec![0; num_lanes],
                    detected_sum: 0,
                    halted_sum: 0,
                    move_counts: match (config.lane_discipline, road.dest()) {
                        (crate::LaneDiscipline::SharedMixed, Some((i, _))) => Some(
                            MovementCounters::new(topology.intersection(i).layout().num_links()),
                        ),
                        _ => None,
                    },
                    // Decorrelate road streams with a splitmix-style odd
                    // multiplier; SmallRng scrambles the seed further.
                    rng: SmallRng::seed_from_u64(
                        seed ^ (r.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                }
            })
            .collect();

        let mut obs_buf = ObservationBuffer::new();
        obs_buf.shape_for(
            topology
                .intersection_ids()
                .map(|i| topology.intersection(i).layout()),
        );

        MicroSim {
            topology,
            config,
            controllers: ControllerSlot::wrap_all(controllers),
            roads,
            net,
            junctions,
            arena: VehicleArena::new(),
            backlogs: vec![VecDeque::new(); num_roads],
            ledger: WaitingLedger::new(),
            now: Tick::ZERO,
            total_crossings: 0,
            obs_buf,
            landing_scratch: Vec::new(),
            lane_green: lane_links
                .iter()
                .map(|links| vec![false; links.len()])
                .collect(),
            road_dest,
            lane_links,
            lane_index_by_link,
            link_in_road,
            link_out_road,
        }
    }

    /// The simulated network.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// The simulator configuration.
    pub fn config(&self) -> &MicroSimConfig {
        &self.config
    }

    /// The current instant (the next tick to be simulated).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Per-vehicle journey accounting and completed-vehicle waiting
    /// statistics. Active vehicles carry their waiting in simulator-side
    /// accumulators; use
    /// [`mean_waiting_including_active`](Self::mean_waiting_including_active)
    /// for the paper's headline metric.
    pub fn ledger(&self) -> &WaitingLedger {
        &self.ledger
    }

    /// Average waiting time per vehicle including vehicles still in the
    /// network (and those queued outside full entries) — the paper's
    /// "average queuing time of a vehicle". Folds the live per-vehicle
    /// wait accumulators into the ledger's completed statistics at query
    /// time; O(active vehicles), never touched by the step path.
    pub fn mean_waiting_including_active(&self) -> f64 {
        let now = self.now;
        let lane_waits = self.net.all_waits();
        let box_waits = self
            .junctions
            .iter()
            .flat_map(|j| j.in_box.iter().map(|c| c.wait));
        let backlog_waits = self
            .backlogs
            .iter()
            .flat_map(|b| b.iter().map(move |e| now.saturating_since(e.since).count()));
        self.ledger
            .mean_waiting_including_active(lane_waits.chain(box_waits).chain(backlog_waits))
    }

    /// Stop-line crossings since the start.
    pub fn total_crossings(&self) -> u64 {
        self.total_crossings
    }

    /// Vehicles currently on lanes or in junction boxes.
    pub fn vehicles_in_network(&self) -> usize {
        let on_lanes = self.net.total_vehicles();
        let in_boxes: usize = self.junctions.iter().map(|j| j.in_box.len()).sum();
        on_lanes + in_boxes
    }

    /// Vehicles waiting outside full boundary entries.
    pub fn backlog_len(&self) -> usize {
        self.backlogs.iter().map(|b| b.len()).sum()
    }

    /// Debug/test digest of the fleet state: `(on-lane vehicles, in-box
    /// vehicles, Σ position, Σ speed)`, with the sums taken over on-lane
    /// vehicles in road/lane/front-to-back order. Backs the
    /// arena-vs-legacy semantics oracle in the regression suite.
    pub fn fleet_digest(&self) -> (usize, usize, f64, f64) {
        let mut on_lanes = 0usize;
        let mut pos = 0.0f64;
        let mut speed = 0.0f64;
        for r in 0..self.roads.len() {
            for l in 0..self.net.num_lanes(r) {
                for i in 0..self.net.len(r, l) {
                    on_lanes += 1;
                    pos += self.net.pos_at(r, l, i);
                    speed += self.net.speed_at(r, l, i);
                }
            }
        }
        let in_boxes: usize = self.junctions.iter().map(|j| j.in_box.len()).sum();
        (on_lanes, in_boxes, pos, speed)
    }

    /// Closes or reopens a road (a disruption event). A closed road admits
    /// no new traffic — heads are never released toward it and boundary
    /// insertions on a closed entry road stay in the backlog — but
    /// vehicles already on it keep driving and may leave it, like a
    /// street closed at its upstream end.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        self.roads[road.index()].closed = closed;
    }

    /// Whether `road` is currently closed to entering traffic.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_closed(&self, road: RoadId) -> bool {
        self.roads[road.index()].closed
    }

    /// Detected queue `q_i^{i'}` for `link` at `intersection`: vehicles
    /// present on the movement's dedicated lane within the detector range
    /// of the stop line. Presence (rather than halting) is used upstream
    /// so a *discharging* queue keeps exerting pressure until it has
    /// physically cleared the junction — halting counts collapse the
    /// moment the queue starts rolling, which makes every adaptive
    /// controller thrash.
    ///
    /// Under [`LaneDiscipline::DedicatedPerMovement`](crate::LaneDiscipline)
    /// this is an O(1) read of the lane's incrementally maintained
    /// detector counter.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn movement_queue_len(&self, intersection: IntersectionId, link: LinkId) -> u32 {
        let r = self.link_in_road[intersection.index()][link.index()];
        if self.config.lane_discipline == crate::LaneDiscipline::DedicatedPerMovement {
            let lane = self.lane_index_by_link[r][link.index()];
            return self.roads[r].lane_detected[lane];
        }
        if let Some(mv) = &self.roads[r].move_counts {
            // SharedMixed: the incrementally maintained per-(road, link)
            // counter (vehicles for a movement may sit on any lane).
            return mv.detected[link.index()];
        }
        self.movement_detected(intersection, link, self.config.detection_range_m)
    }

    /// Total vehicles bound for `link` on the incoming road, over its
    /// whole length, regardless of the detector range.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn movement_count(&self, intersection: IntersectionId, link: LinkId) -> u32 {
        let r = self.link_in_road[intersection.index()][link.index()];
        if self.config.lane_discipline == crate::LaneDiscipline::DedicatedPerMovement {
            let lane = self.lane_index_by_link[r][link.index()];
            return self.net.len(r, lane) as u32;
        }
        if let Some(mv) = &self.roads[r].move_counts {
            return mv.total[link.index()];
        }
        self.movement_detected(intersection, link, f64::INFINITY)
    }

    /// Rescan-based detector read for arbitrary ranges (and the
    /// [`LaneDiscipline::SharedMixed`](crate::LaneDiscipline) fallback,
    /// where per-movement counts cannot be kept per lane). Reads the
    /// lanes' cached per-vehicle movement links, so no route is chased.
    fn movement_detected(&self, intersection: IntersectionId, link: LinkId, range: f64) -> u32 {
        let r = self.link_in_road[intersection.index()][link.index()];
        let length = self.roads[r].length;
        match self.config.lane_discipline {
            crate::LaneDiscipline::DedicatedPerMovement => {
                let lane = self.lane_index_by_link[r][link.index()];
                self.net.detected(r, lane, length, range)
            }
            crate::LaneDiscipline::SharedMixed => {
                // Vehicles for this movement may sit on any lane.
                let li = link.index() as u16;
                (0..self.net.num_lanes(r))
                    .map(|l| {
                        (0..self.net.len(r, l))
                            .filter(|&i| {
                                self.net.pos_at(r, l, i) >= length - range
                                    && self.net.link_at(r, l, i) == li
                            })
                            .count() as u32
                    })
                    .sum()
            }
        }
    }

    /// Halted vehicles across all lanes of a road (whole length) — an
    /// O(lanes) read of the incremental halt counters.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_halted(&self, road: RoadId) -> u32 {
        self.roads[road.index()].halted_sum
    }

    /// The outgoing-road sensor reading `q_{i'}` per the configured
    /// [`OutgoingSensor`](crate::OutgoingSensor) — O(1) from the dense
    /// incremental counters, whatever the variant.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_sensor(&self, road: RoadId) -> u32 {
        use crate::config::OutgoingSensor;
        match self.config.outgoing_sensor {
            OutgoingSensor::HaltedWholeRoad => self.road_halted(road),
            OutgoingSensor::PresenceNearJunction => self.roads[road.index()].detected_sum,
            OutgoingSensor::Occupancy => self.roads[road.index()].occupancy,
        }
    }

    /// Detected total queue `q_i` (Eq. 1) at an incoming arm — the paper's
    /// Fig. 5 quantity.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        let layout = self.topology.intersection(intersection).layout();
        layout
            .links_from(arm)
            .iter()
            .map(|&l| self.movement_queue_len(intersection, l))
            .sum()
    }

    /// Occupancy of a road (vehicles on its lanes plus inbound junction-box
    /// reservations).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_occupancy(&self, road: RoadId) -> u32 {
        self.roads[road.index()].occupancy
    }

    /// Cumulative vehicles that have entered `road` since the start
    /// (boundary insertions plus junction-box landings).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_entered(&self, road: RoadId) -> u64 {
        self.roads[road.index()].entered
    }

    /// The queue observation the controller at `intersection` sees.
    ///
    /// Allocates a fresh observation; the step pipeline itself uses
    /// [`observe_into`](Self::observe_into) over a reused
    /// [`ObservationBuffer`].
    ///
    /// # Panics
    ///
    /// Panics if `intersection` is out of range.
    pub fn observe(&self, intersection: IntersectionId) -> QueueObservation {
        let layout = self.topology.intersection(intersection).layout();
        let mut obs = QueueObservation::zeros(layout);
        self.observe_into(intersection, &mut obs);
        obs
    }

    /// Writes the observation for `intersection` into `obs` (shaped for
    /// the intersection's layout) without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `intersection` is out of range or `obs` has the wrong
    /// shape.
    pub fn observe_into(&self, intersection: IntersectionId, obs: &mut QueueObservation) {
        let node = self.topology.intersection(intersection);
        let layout = node.layout();
        for link in layout.link_ids() {
            obs.set_movement(link, self.movement_queue_len(intersection, link));
        }
        for out in layout.outgoing_ids() {
            obs.set_outgoing(out, self.road_sensor(node.outgoing_road(out)));
        }
    }

    /// Validates the incremental-sensing invariants: every lane's detector
    /// and halt counters must equal a from-scratch rescan, every lane's
    /// pending-reservation counter must equal the number of junction-box
    /// crossings heading for it (the scan it replaced), and every cached
    /// per-vehicle movement link must equal the one derived from the
    /// arena's route cursor. Debug/test facility backing the regression
    /// suite.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first divergent road/lane.
    pub fn verify_sensors(&self) -> Result<(), String> {
        self.net.verify_active()?;
        for (r, road) in self.roads.iter().enumerate() {
            let mut detected_sum = 0u32;
            let mut halted_sum = 0u32;
            for l in 0..self.net.num_lanes(r) {
                let (detected, halted) = self.net.rescan_sensors(r, l, road.spec);
                detected_sum += detected;
                halted_sum += halted;
                if road.lane_detected[l] != detected || road.lane_halted[l] != halted {
                    return Err(format!(
                        "road {r} lane {l}: incremental (detected {}, halted {}) != rescan \
                         (detected {detected}, halted {halted})",
                        road.lane_detected[l], road.lane_halted[l],
                    ));
                }
                let pending = self
                    .junctions
                    .iter()
                    .flat_map(|j| j.in_box.iter())
                    .filter(|c| c.dest_road == r && c.dest_lane == l)
                    .count() as u32;
                if road.pending[l] != pending {
                    return Err(format!(
                        "road {r} lane {l}: pending reservations {} != in-box scan {pending}",
                        road.pending[l]
                    ));
                }
                for i in 0..self.net.len(r, l) {
                    let slot = self.net.slot_at(r, l, i);
                    let derived = self
                        .arena
                        .route(slot)
                        .hop(self.arena.hop(slot))
                        .map_or(LINK_NONE, |(_, link)| link.index() as u16);
                    if self.net.link_at(r, l, i) != derived {
                        return Err(format!(
                            "road {r} lane {l} vehicle {i}: cached link {} != route-derived \
                             {derived}",
                            self.net.link_at(r, l, i)
                        ));
                    }
                }
            }
            if road.detected_sum != detected_sum || road.halted_sum != halted_sum {
                return Err(format!(
                    "road {r}: sums (detected {}, halted {}) != rescan (detected \
                     {detected_sum}, halted {halted_sum})",
                    road.detected_sum, road.halted_sum,
                ));
            }
            if let Some(mv) = &road.move_counts {
                for link in 0..mv.total.len() {
                    let (mut total, mut detected) = (0u32, 0u32);
                    for l in 0..self.net.num_lanes(r) {
                        for i in 0..self.net.len(r, l) {
                            if self.net.link_at(r, l, i) == link as u16 {
                                total += 1;
                                if self.net.pos_at(r, l, i) >= road.spec.detect_from {
                                    detected += 1;
                                }
                            }
                        }
                    }
                    if mv.total[link] != total || mv.detected[link] != detected {
                        return Err(format!(
                            "road {r} link {link}: incremental movement (total {}, detected {})                              != rescan (total {total}, detected {detected})",
                            mv.total[link], mv.detected[link]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Simulates one step of `Δt`, injecting this tick's `arrivals`.
    pub fn step(&mut self, arrivals: Vec<Arrival>) -> StepReport {
        let mut arrivals = arrivals;
        let mut report = StepReport::empty();
        self.step_into(&mut arrivals, &mut report);
        report
    }

    /// Allocation-free variant of [`step`](Self::step): drains `arrivals`
    /// and overwrites `report` in place, reusing its buffers. This is the
    /// steady-state hot path — callers that reuse the same `Vec<Arrival>`
    /// and [`StepReport`] across ticks incur no per-tick heap allocation
    /// from observations or decision vectors.
    pub fn step_into(&mut self, arrivals: &mut Vec<Arrival>, report: &mut StepReport) {
        self.step_phases(arrivals, report, None);
    }

    /// [`step_into`](Self::step_into) with per-phase wall-clock
    /// attribution: each phase group's elapsed time is *added* to
    /// `timings`, so one accumulator can span a whole measured run.
    pub fn step_into_timed(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        report: &mut StepReport,
        timings: &mut PhaseTimings,
    ) {
        self.step_phases(arrivals, report, Some(timings));
    }

    fn step_phases(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        report: &mut StepReport,
        timings: Option<&mut PhaseTimings>,
    ) {
        let now = self.now;
        let mut watch = PhaseStopwatch::new(timings);

        // 1. Sense: rewrite the per-intersection observation buffer from
        //    the incremental detector counters (O(links) per junction).
        let mut obs_buf = std::mem::take(&mut self.obs_buf);
        for i in self.topology.intersection_ids() {
            self.observe_into(i, obs_buf.get_mut(i.index()));
        }

        // 2. Decide: one controller per intersection, reading only its own
        //    observation — embarrassingly parallel, sharded under Rayon.
        {
            let topology = &self.topology;
            parallel::decide_all(
                self.config.parallelism,
                &mut self.controllers,
                &obs_buf,
                now,
                |idx| {
                    topology
                        .intersection(IntersectionId::new(idx as u32))
                        .layout()
                },
            );
        }
        self.obs_buf = obs_buf;

        // 3. Refresh per-link green flags and service credits.
        for i in self.topology.intersection_ids() {
            let layout = self.topology.intersection(i).layout();
            let j = &mut self.junctions[i.index()];
            j.active.iter_mut().for_each(|a| *a = false);
            if let PhaseDecision::Control(phase) = self.controllers[i.index()].decision {
                for &l in layout.phase(phase).links() {
                    j.active[l.index()] = true;
                }
            }
            for l in layout.link_ids() {
                let idx = l.index();
                if j.active[idx] {
                    let mu_dt = layout.link(l).service_rate() * self.config.dt_seconds;
                    j.credit[idx] = (j.credit[idx] + mu_dt).min(mu_dt.max(1.0));
                } else {
                    j.credit[idx] = 0.0;
                }
                if self.config.lane_discipline == crate::LaneDiscipline::DedicatedPerMovement {
                    let in_road = self.link_in_road[i.index()][idx];
                    let lane = self.lane_index_by_link[in_road][idx];
                    self.lane_green[in_road][lane] = j.active[idx] && j.credit[idx] >= 1.0;
                }
            }
        }
        watch.lap(|t| &mut t.decide);

        // 4. Box countdown.
        for j in &mut self.junctions {
            for c in &mut j.in_box {
                if c.remaining > 0 {
                    c.remaining -= 1;
                }
            }
        }

        // 5. Head phase (serial): decide release for every lane head and
        //    advance it; crossings mutate shared junction/road state
        //    (credits, occupancies, reservations), so they stay on one
        //    thread. Head decisions see the tick-start state of other
        //    roads plus crossings already applied earlier in this loop.
        let mut crossings = 0u32;
        let mut completed = 0u32;
        // Fidelity decides where dawdle noise comes from: the road's
        // sequential stream (exact) or stateless counter draws (batched).
        let (fidelity, dawdle_seed) = (self.config.fidelity, self.config.seed);
        let tick = now.index();
        // Occupancy-ordered sweep: only roads with vehicles are visited
        // (ascending road index, same per-road order as a full scan, so
        // exact-mode RNG streams are untouched — empty lanes never drew).
        // During road `r`'s turn the only possible active-list mutation
        // is `r` itself deactivating (pops land in junction boxes, not on
        // other roads' lanes), so the cursor advances only when `r` is
        // still listed at it.
        let mut ai = 0usize;
        while ai < self.net.num_active() {
            let r = self.net.active_road(ai);
            let length = self.roads[r].length;
            let spec = self.roads[r].spec;
            let dest = self.road_dest[r];
            for lane_idx in 0..self.net.num_lanes(r) {
                if self.net.is_empty(r, lane_idx) {
                    continue;
                }
                // Release decision for the head vehicle.
                let (mode, head_dest) = match dest {
                    None => (HeadMode::Release, None),
                    Some(j) => {
                        // Green-with-credit: the precomputed per-lane flag
                        // under dedicated lanes; the live junction lookup
                        // under SharedMixed (head-of-line semantics —
                        // whatever movement the *head* vehicle needs
                        // governs the lane; its cached link never changes
                        // on-road).
                        let (green, li) = match self.config.lane_discipline {
                            crate::LaneDiscipline::DedicatedPerMovement => {
                                (self.lane_green[r][lane_idx], usize::MAX)
                            }
                            crate::LaneDiscipline::SharedMixed => {
                                let li = self.net.link_at(r, lane_idx, 0) as usize;
                                (
                                    self.junctions[j].active[li]
                                        && self.junctions[j].credit[li] >= 1.0,
                                    li,
                                )
                            }
                        };
                        if green {
                            let li = if li != usize::MAX {
                                li
                            } else {
                                self.lane_links[r][lane_idx]
                                    .expect("dedicated lanes always map to a link")
                                    .index()
                            };
                            let out_r = self.link_out_road[j][li];
                            if !self.roads[out_r].closed
                                && self.roads[out_r].occupancy < self.roads[out_r].capacity
                            {
                                let slot = self.net.slot_at(r, lane_idx, 0);
                                let dest_lane = self.choose_dest_lane(
                                    out_r,
                                    self.arena.hop(slot) + 1,
                                    self.arena.route(slot),
                                );
                                if self.dest_lane_has_room(out_r, dest_lane) {
                                    (HeadMode::Release, Some((j, li, out_r, dest_lane)))
                                } else {
                                    (HeadMode::Blocked, None)
                                }
                            } else {
                                (HeadMode::Blocked, None)
                            }
                        } else {
                            (HeadMode::Blocked, None)
                        }
                    }
                };

                let road = &mut self.roads[r];
                let mut noise = match fidelity {
                    Fidelity::Exact => DawdleSource::Stream(&mut road.rng),
                    Fidelity::Batched => DawdleSource::Counter {
                        seed: dawdle_seed,
                        tick,
                    },
                };
                let outcome = advance_head(
                    &mut self.net,
                    r,
                    lane_idx,
                    length,
                    mode,
                    &self.config,
                    spec,
                    &mut noise,
                    road.move_counts.as_mut(),
                );
                if outcome.detected_delta != 0 {
                    road.lane_detected[lane_idx] =
                        (road.lane_detected[lane_idx] as i32 + outcome.detected_delta) as u32;
                    road.detected_sum = (road.detected_sum as i32 + outcome.detected_delta) as u32;
                }
                if outcome.halted_delta != 0 {
                    road.lane_halted[lane_idx] =
                        (road.lane_halted[lane_idx] as i32 + outcome.halted_delta) as u32;
                    road.halted_sum = (road.halted_sum as i32 + outcome.halted_delta) as u32;
                }
                if let Some((slot, wait)) = outcome.crossed {
                    match head_dest {
                        None => {
                            // Exit road: the vehicle leaves the network,
                            // flushing its accumulated waiting.
                            road.occupancy = road.occupancy.saturating_sub(1);
                            let id = self.arena.release(slot);
                            self.ledger.complete(id, now, wait);
                            completed += 1;
                        }
                        Some((j, li, out_r, dest_lane)) => {
                            self.junctions[j].credit[li] -= 1.0;
                            self.roads[r].occupancy = self.roads[r].occupancy.saturating_sub(1);
                            self.roads[out_r].occupancy += 1;
                            self.roads[out_r].pending[dest_lane] += 1;
                            self.arena.bump_hop(slot);
                            self.junctions[j].in_box.push(Crossing {
                                slot,
                                wait,
                                remaining: self.config.crossing_ticks,
                                dest_road: out_r,
                                dest_lane,
                            });
                            crossings += 1;
                            self.total_crossings += 1;
                        }
                    }
                }
            }
            // Advance past `r` unless its last vehicle just crossed (then
            // the list already shifted left under the cursor).
            if ai < self.net.num_active() && self.net.active_road(ai) == r {
                ai += 1;
            }
        }

        // 6. Car-following for the remaining vehicles: per-road work with
        //    no cross-road reads or writes — the expensive phase. Serial
        //    execution walks the active-road list over one full-range
        //    view of the network arena (a few linear sweeps, zero
        //    allocation); Rayon splits the arena into disjoint per-shard
        //    windows at road boundaries (`split_at_mut`, no unsafe) and
        //    skips empty roads inside each shard. Per-road RNGs keep the
        //    two bit-identical.
        {
            let config = &self.config;
            let roads = &mut self.roads;
            let net = &mut self.net;
            let workers = config.parallelism.workers(roads.len());
            if workers <= 1 {
                let (mut view, spans, active) = net.follower_parts();
                for &r in active {
                    let r = r as usize;
                    follow_road(&mut view, &spans[r], &mut roads[r], config, tick);
                }
            } else {
                let chunk = roads.len().div_ceil(workers);
                let (shards, spans) = net.follower_shards(chunk);
                let mut tasks: Vec<FollowerTask<'_>> = Vec::with_capacity(shards.len());
                let mut rest: &mut [RoadSim] = roads;
                for shard in shards {
                    let take = shard.r1 - shard.r0;
                    let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                    rest = tail;
                    tasks.push(FollowerTask { shard, roads: head });
                }
                parallel::for_each_indexed_mut(config.parallelism, &mut tasks, |_, task| {
                    for (i, road) in task.roads.iter_mut().enumerate() {
                        let r = task.shard.r0 + i;
                        let span = &spans[r];
                        if span.live == 0 {
                            continue;
                        }
                        follow_road(&mut task.shard.view, span, road, config, tick);
                    }
                });
            }
        }
        watch.lap(|t| &mut t.car_following);

        // 7. Land vehicles whose box traversal finished. Ready crossings
        //    are drained through a reused scratch vector so box order is
        //    preserved for the held ones, without per-tick allocation.
        {
            let junctions = &mut self.junctions;
            let roads = &mut self.roads;
            let net = &mut self.net;
            let config = &self.config;
            let scratch = &mut self.landing_scratch;
            let arena = &self.arena;
            for junction in junctions.iter_mut() {
                if junction.in_box.is_empty() {
                    continue;
                }
                std::mem::swap(&mut junction.in_box, scratch);
                for crossing in scratch.drain(..) {
                    if crossing.remaining > 0 {
                        junction.in_box.push(crossing);
                        continue;
                    }
                    let road = &mut roads[crossing.dest_road];
                    if !net.entry_clear(crossing.dest_road, crossing.dest_lane, road.length, config)
                    {
                        // Held in the box until the lane entry clears.
                        junction.in_box.push(crossing);
                        continue;
                    }
                    let leader = lane_entry_leader(
                        net,
                        crossing.dest_road,
                        crossing.dest_lane,
                        road.length,
                        config,
                    );
                    let speed = next_speed(config.insertion_speed_mps, leader, 0.0, config);
                    let mut wait = crossing.wait;
                    if speed < config.waiting_speed_mps {
                        // Landed into a standing queue: this tick already
                        // counts as waiting (the follower phase that
                        // normally records it has passed).
                        wait += 1;
                    }
                    let link = arena
                        .route(crossing.slot)
                        .hop(arena.hop(crossing.slot))
                        .map_or(LINK_NONE, |(_, l)| l.index() as u16);
                    road.sensor_add(crossing.dest_lane, 0.0, speed);
                    if let (Some(mv), true) = (road.move_counts.as_mut(), link != LINK_NONE) {
                        mv.add(link as usize, 0.0, road.spec);
                    }
                    net.push(
                        crossing.dest_road,
                        crossing.dest_lane,
                        0.0,
                        speed,
                        wait,
                        crossing.slot,
                        link,
                        arena.id(crossing.slot).raw(),
                    );
                    road.pending[crossing.dest_lane] -= 1;
                    road.entered += 1;
                }
            }
        }
        watch.lap(|t| &mut t.landings);

        // 8. Insertions: backlog first, then this tick's arrivals. The
        //    slot is probed before popping, so nothing is cloned and a
        //    backlogged vehicle is only removed once its insert succeeds;
        //    its whole backlog dwell is credited to its wait accumulator
        //    here, in one shot (backlogs are never scanned per tick).
        let mut injected = 0u32;
        for r in 0..self.roads.len() {
            while let Some(front) = self.backlogs[r].front() {
                let Some(lane_idx) = self.insert_slot(r, &front.route) else {
                    break;
                };
                let entry = self.backlogs[r].pop_front().expect("checked front");
                let dwell = now.saturating_since(entry.since).count();
                self.place_vehicle(r, lane_idx, entry.id, entry.route, dwell);
            }
        }
        for arrival in arrivals.drain(..) {
            let Arrival { vehicle, route, .. } = arrival;
            let r = route.entry().index();
            self.ledger.enter(vehicle, now);
            if self.backlogs[r].is_empty() {
                if let Some(lane_idx) = self.insert_slot(r, &route) {
                    self.place_vehicle(r, lane_idx, vehicle, route, 0);
                    injected += 1;
                    continue;
                }
            }
            self.backlogs[r].push_back(Backlogged {
                id: vehicle,
                route,
                since: now,
            });
        }

        self.now = now.next();
        report.tick = now;
        report.decisions.clear();
        report
            .decisions
            .extend(self.controllers.iter().map(|slot| slot.decision));
        report.crossings = crossings;
        report.completed = completed;
        report.injected = injected;
        watch.lap(|t| &mut t.waiting);
    }

    /// The destination lane on `out_road` for a vehicle whose next hop is
    /// `hop`.
    fn choose_dest_lane(&self, out_road: usize, hop: usize, route: &Route) -> usize {
        match (self.road_dest[out_road], self.config.lane_discipline) {
            (Some(_next_i), crate::LaneDiscipline::DedicatedPerMovement) => {
                let (next_i, link) = route
                    .hop(hop)
                    .expect("internal destination road implies a further hop");
                debug_assert_eq!(next_i.index(), _next_i, "route disagrees with topology");
                self.lane_index_by_link[out_road][link.index()]
            }
            // Exit roads and mixed-lane roads: pick the lane with the most
            // entry space.
            _ => self.emptiest_lane(out_road),
        }
    }

    /// The lane of `road` with the most entry space.
    fn emptiest_lane(&self, road: usize) -> usize {
        let length = self.roads[road].length;
        let mut best = 0usize;
        let mut best_tail = f64::NEG_INFINITY;
        for i in 0..self.net.num_lanes(road) {
            let tail = self.net.tail_position(road, i, length);
            if tail > best_tail {
                best_tail = tail;
                best = i;
            }
        }
        best
    }

    /// Whether `dest_lane` on `out_road` can absorb one more crossing,
    /// counting vehicles already in boxes heading for the same lane —
    /// an O(1) read of the road's pending-reservation counter.
    fn dest_lane_has_room(&self, out_road: usize, dest_lane: usize) -> bool {
        let road = &self.roads[out_road];
        let pending = road.pending[dest_lane] as f64;
        let tail = self.net.tail_position(out_road, dest_lane, road.length);
        tail >= self.config.jam_spacing_m() * (pending + 1.0)
    }

    /// The lane on entry road `r` that can absorb `route`'s vehicle right
    /// now, or `None` if the road is full or the lane entry is blocked.
    fn insert_slot(&self, r: usize, route: &Route) -> Option<usize> {
        if self.roads[r].closed || self.roads[r].occupancy >= self.roads[r].capacity {
            return None;
        }
        let (_, link) = route.hop(0).expect("routes have at least one hop");
        let lane_idx = match self.config.lane_discipline {
            crate::LaneDiscipline::DedicatedPerMovement => self.lane_index_by_link[r][link.index()],
            crate::LaneDiscipline::SharedMixed => self.emptiest_lane(r),
        };
        if !self
            .net
            .entry_clear(r, lane_idx, self.roads[r].length, &self.config)
        {
            return None;
        }
        Some(lane_idx)
    }

    /// Inserts a vehicle at the start of lane `lane_idx` of road `r`
    /// (which [`insert_slot`](Self::insert_slot) must have cleared),
    /// seeding its wait accumulator with `wait` already-accrued ticks
    /// (backlog dwell).
    fn place_vehicle(
        &mut self,
        r: usize,
        lane_idx: usize,
        id: VehicleId,
        route: Arc<Route>,
        mut wait: u64,
    ) {
        let (_, link) = route.hop(0).expect("routes have at least one hop");
        let link = link.index() as u16;
        let slot = self.arena.insert(id, route);
        let length = self.roads[r].length;
        let leader = lane_entry_leader(&self.net, r, lane_idx, length, &self.config);
        let speed = next_speed(self.config.insertion_speed_mps, leader, 0.0, &self.config);
        if speed < self.config.waiting_speed_mps {
            // Inserted into a standing queue after the follower phase:
            // this tick already counts as waiting.
            wait += 1;
        }
        let road = &mut self.roads[r];
        road.sensor_add(lane_idx, 0.0, speed);
        if let Some(mv) = road.move_counts.as_mut() {
            mv.add(link as usize, 0.0, road.spec);
        }
        road.occupancy += 1;
        road.entered += 1;
        self.net
            .push(r, lane_idx, 0.0, speed, wait, slot, link, id.raw());
    }

    /// Visits every vehicle that still has junction crossings ahead of it
    /// and lets `replan` rewrite its remaining route (en-route
    /// replanning; part of the `TrafficSubstrate` contract in
    /// `utilbp-substrate`).
    ///
    /// The walk order is deterministic: roads in index order (lanes in
    /// order, head to tail), then junction boxes in index order (box
    /// order), then backlogs in road order (FIFO). The callback receives
    /// the vehicle's id, its route, and the number of committed leading hops —
    /// `cursor + 1` for vehicles in the network, whose current lane (or,
    /// while crossing, destination lane) is bound to the cursor's
    /// movement, and `0` for backlogged vehicles that have not entered
    /// yet. A returned replacement must preserve exactly that prefix; the
    /// lanes' cached link indices and the pending-reservation counters
    /// stay valid because the bound movement never changes. Returns the
    /// number of vehicles rewritten; draws no randomness.
    pub fn replan_routes(&mut self, replan: &mut utilbp_netgen::RouteRewrite<'_>) -> u64 {
        let mut diverted = 0u64;
        for r in 0..self.roads.len() {
            for lane_idx in 0..self.net.num_lanes(r) {
                for i in 0..self.net.len(r, lane_idx) {
                    let slot = self.net.slot_at(r, lane_idx, i);
                    let fixed = self.arena.hop(slot) + 1;
                    if let Some(route) = replan(self.arena.id(slot), self.arena.route(slot), fixed)
                    {
                        self.arena.set_route(slot, route);
                        diverted += 1;
                    }
                }
            }
        }
        for j in 0..self.junctions.len() {
            for c in 0..self.junctions[j].in_box.len() {
                let slot = self.junctions[j].in_box[c].slot;
                let fixed = self.arena.hop(slot) + 1;
                if let Some(route) = replan(self.arena.id(slot), self.arena.route(slot), fixed) {
                    self.arena.set_route(slot, route);
                    diverted += 1;
                }
            }
        }
        for backlog in &mut self.backlogs {
            for entry in backlog.iter_mut() {
                if let Some(route) = replan(entry.id, &entry.route, 0) {
                    entry.route = route;
                    diverted += 1;
                }
            }
        }
        diverted
    }

    /// Fills `out` with every road's current occupancy, indexed by
    /// [`RoadId`] (the `TrafficSubstrate` occupancy-snapshot contract).
    /// O(roads) reads of the incrementally maintained counters.
    pub fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.roads.iter().map(|r| r.occupancy));
    }

    /// Serializes the whole plant state — fleet (arena + lanes), per-road
    /// RNG stream positions, incremental sensor/movement counters,
    /// junction boxes and credits, closure flags, backlogs, the waiting
    /// ledger, and every controller's state — such that
    /// [`load_state`](Self::load_state) into a freshly built simulator
    /// (same topology, config, and controller composition) continues
    /// bit-identically to the uninterrupted run.
    ///
    /// Intra-step scratch (observation buffers, per-step green flags,
    /// landing drains, the lanes' dequeue offsets) is *not* state: it is
    /// rebuilt by the next step's earlier phases, and canonicalizing it
    /// away makes save → load → save a byte-level fixed point.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push(self.now.index());
        writer.push(self.total_crossings);
        self.arena.save_state(writer);
        writer.push_usize(self.roads.len());
        for (r, road) in self.roads.iter().enumerate() {
            writer.push_bool(road.closed);
            writer.push_u32(road.occupancy);
            writer.push(road.entered);
            writer.push_usize(self.net.num_lanes(r));
            for l in 0..self.net.num_lanes(r) {
                self.net.save_lane(r, l, writer);
            }
            for &p in &road.pending {
                writer.push_u32(p);
            }
            for &d in &road.lane_detected {
                writer.push_u32(d);
            }
            for &h in &road.lane_halted {
                writer.push_u32(h);
            }
            writer.push_u32(road.detected_sum);
            writer.push_u32(road.halted_sum);
            match &road.move_counts {
                None => writer.push_bool(false),
                Some(mv) => {
                    writer.push_bool(true);
                    mv.save_state(writer);
                }
            }
            for word in road.rng.state() {
                writer.push(word);
            }
        }
        writer.push_usize(self.junctions.len());
        for junction in &self.junctions {
            writer.push_usize(junction.in_box.len());
            for c in &junction.in_box {
                writer.push_u32(c.slot);
                writer.push(c.wait);
                writer.push(c.remaining);
                writer.push_usize(c.dest_road);
                writer.push_usize(c.dest_lane);
            }
            writer.push_usize(junction.credit.len());
            for &credit in &junction.credit {
                writer.push_f64(credit);
            }
        }
        for backlog in &self.backlogs {
            writer.push_usize(backlog.len());
            for entry in backlog {
                writer.push(entry.id.raw());
                writer.push(entry.since.index());
                entry.route.save_state(writer);
            }
        }
        self.ledger.save_state(writer);
        for slot in &self.controllers {
            slot.controller.save_state(writer);
        }
    }

    /// Restores plant state saved by [`save_state`](Self::save_state)
    /// into this simulator, which must have been built over the same
    /// topology, configuration, and controller composition.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated or corrupt stream, or
    /// when the saved shape (road/lane/junction counts) disagrees with
    /// this simulator's topology.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.now = Tick::new(reader.take()?);
        self.total_crossings = reader.take()?;
        self.arena.load_state(reader)?;
        let num_roads = reader.take_usize()?;
        if num_roads != self.roads.len() {
            return Err(StateError::Invalid {
                what: "road count",
                word: num_roads as u64,
            });
        }
        for r in 0..num_roads {
            {
                let road = &mut self.roads[r];
                road.closed = reader.take_bool()?;
                road.occupancy = reader.take_u32()?;
                road.entered = reader.take()?;
            }
            let num_lanes = reader.take_usize()?;
            if num_lanes != self.net.num_lanes(r) {
                return Err(StateError::Invalid {
                    what: "lane count",
                    word: num_lanes as u64,
                });
            }
            for l in 0..num_lanes {
                self.net.load_lane(r, l, reader)?;
            }
            // The lanes' cached vehicle ids are not on the wire; rebuild
            // them from the (already restored) arena.
            self.net.refresh_ids_road(r, &self.arena);
            let road = &mut self.roads[r];
            for p in &mut road.pending {
                *p = reader.take_u32()?;
            }
            for d in &mut road.lane_detected {
                *d = reader.take_u32()?;
            }
            for h in &mut road.lane_halted {
                *h = reader.take_u32()?;
            }
            road.detected_sum = reader.take_u32()?;
            road.halted_sum = reader.take_u32()?;
            let has_moves = reader.take_bool()?;
            match (&mut road.move_counts, has_moves) {
                (Some(mv), true) => mv.load_state(reader)?,
                (None, false) => {}
                (_, word) => {
                    return Err(StateError::Invalid {
                        what: "movement counter presence",
                        word: word as u64,
                    })
                }
            }
            let mut rng_state = [0u64; 4];
            for word in &mut rng_state {
                *word = reader.take()?;
            }
            road.rng = SmallRng::from_state(rng_state);
        }
        let num_junctions = reader.take_usize()?;
        if num_junctions != self.junctions.len() {
            return Err(StateError::Invalid {
                what: "junction count",
                word: num_junctions as u64,
            });
        }
        for junction in &mut self.junctions {
            let in_box = reader.take_usize()?;
            junction.in_box.clear();
            for _ in 0..in_box {
                junction.in_box.push(Crossing {
                    slot: reader.take_u32()?,
                    wait: reader.take()?,
                    remaining: reader.take()?,
                    dest_road: reader.take_usize()?,
                    dest_lane: reader.take_usize()?,
                });
            }
            let credits = reader.take_usize()?;
            if credits != junction.credit.len() {
                return Err(StateError::Invalid {
                    what: "credit count",
                    word: credits as u64,
                });
            }
            for credit in &mut junction.credit {
                *credit = reader.take_f64()?;
            }
        }
        for backlog in &mut self.backlogs {
            let len = reader.take_usize()?;
            backlog.clear();
            for _ in 0..len {
                let id = VehicleId::new(reader.take()?);
                let since = Tick::new(reader.take()?);
                let route = Arc::new(Route::load_state(reader)?);
                backlog.push_back(Backlogged { id, route, since });
            }
        }
        self.ledger = WaitingLedger::load_state(reader)?;
        for slot in &mut self.controllers {
            slot.controller.load_state(reader)?;
        }
        Ok(())
    }
}

/// The leader a vehicle entering at `pos = 0` of lane `l` of road `r`
/// faces.
fn lane_entry_leader(
    net: &NetworkLanes,
    r: usize,
    l: usize,
    length: f64,
    cfg: &MicroSimConfig,
) -> LeaderInfo {
    if net.is_empty(r, l) {
        LeaderInfo::Wall { distance_m: length }
    } else {
        let last = net.len(r, l) - 1;
        LeaderInfo::Vehicle {
            net_gap_m: net.pos_at(r, l, last) - cfg.vehicle_length_m - cfg.min_gap_m,
            speed_mps: net.speed_at(r, l, last),
        }
    }
}

/// One Rayon shard of the follower phase: a disjoint arena window plus
/// the matching chunk of road bookkeeping (sensor counters, RNG streams)
/// — everything one thread needs, with no sharing.
struct FollowerTask<'a> {
    shard: FollowerShard<'a>,
    roads: &'a mut [RoadSim],
}

/// Runs the follower phase for one road under the configured fidelity,
/// folding the kernels' sensor deltas into the road's dense counters —
/// shared by the serial (active-list) and sharded (Rayon) sweeps, which
/// keeps them bit-identical by construction.
fn follow_road(
    view: &mut LaneView<'_>,
    span: &RoadSpan,
    road: &mut RoadSim,
    config: &MicroSimConfig,
    tick: u64,
) {
    let RoadSim {
        length,
        spec,
        rng,
        move_counts,
        lane_detected,
        lane_halted,
        detected_sum,
        halted_sum,
        ..
    } = road;
    match config.fidelity {
        Fidelity::Exact => {
            for l in 0..span.num_lanes {
                let (dd, hd) = advance_followers(
                    view,
                    span,
                    l,
                    *length,
                    config,
                    *spec,
                    rng,
                    move_counts.as_mut(),
                );
                if dd != 0 {
                    lane_detected[l] = (lane_detected[l] as i64 + dd) as u32;
                    *detected_sum = (*detected_sum as i64 + dd) as u32;
                }
                if hd != 0 {
                    lane_halted[l] = (lane_halted[l] as i64 + hd) as u32;
                    *halted_sum = (*halted_sum as i64 + hd) as u32;
                }
            }
        }
        // The batched kernel advances the whole road in one call and
        // folds per-lane sensor deltas itself.
        Fidelity::Batched => {
            let (dd, hd) = advance_followers_batched_road(
                view,
                span,
                *length,
                config,
                *spec,
                config.seed,
                tick,
                move_counts.as_mut(),
                lane_detected,
                lane_halted,
            );
            *detected_sum = (*detected_sum as i64 + dd) as u32;
            *halted_sum = (*halted_sum as i64 + hd) as u32;
        }
    }
}

#[cfg(test)]
mod occupancy_probe {
    use super::*;
    use utilbp_core::{SignalController, Ticks, UtilBp};
    use utilbp_netgen::{
        DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
    };

    /// Manual lane-occupancy probe for the 10×10 bench workload:
    /// `cargo test -p utilbp-microsim --release -- --ignored --nocapture occupancy`.
    #[test]
    #[ignore = "manual probe"]
    fn occupancy_histogram() {
        let g = GridNetwork::new(GridSpec::with_size(10, 10));
        let n = g.topology().num_intersections();
        let controllers = (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect();
        let mut sim = MicroSim::new(g.topology().clone(), controllers, MicroSimConfig::default());
        let mut gen = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(
                Pattern::I,
                Ticks::new(u64::MAX / 2),
            )),
            7,
        );
        let mut arrivals = Vec::new();
        let mut report = crate::StepReport::empty();
        for k in 0..500u64 {
            arrivals.clear();
            gen.poll_into(&g, utilbp_core::Tick::new(k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut report);
        }
        let mut hist = [0usize; 64];
        let (mut lanes_total, mut lanes_occupied, mut vehicles) = (0usize, 0usize, 0usize);
        for r in 0..sim.roads.len() {
            for l in 0..sim.net.num_lanes(r) {
                let len = sim.net.len(r, l);
                lanes_total += 1;
                if len > 0 {
                    lanes_occupied += 1;
                    vehicles += len;
                    hist[len.min(63)] += 1;
                }
            }
        }
        eprintln!(
            "lanes {lanes_total} ({lanes_occupied} occupied), vehicles {vehicles}, mean occupied len {:.2}; active roads {}/{}",
            vehicles as f64 / lanes_occupied.max(1) as f64,
            sim.net.num_active(),
            sim.roads.len(),
        );
        for (len, count) in hist.iter().enumerate() {
            if *count > 0 {
                eprintln!("  len {len:2}: {count}");
            }
        }
    }

    /// A road closure must drain the road out of the occupancy-ordered
    /// sweep entirely (off the active list, all bookkeeping consistent),
    /// and a reopen must re-register it once traffic returns — the
    /// active-list maintenance edge case a steady-state run never hits.
    #[test]
    fn closure_drains_road_out_of_the_active_sweep() {
        let g = GridNetwork::new(GridSpec::paper());
        let n = g.topology().num_intersections();
        let controllers = (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect();
        let mut sim = MicroSim::new(g.topology().clone(), controllers, MicroSimConfig::default());
        let mut gen = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(
                Pattern::I,
                Ticks::new(u64::MAX / 2),
            )),
            7,
        );
        let mut arrivals = Vec::new();
        let mut report = crate::StepReport::empty();
        let mut k = 0u64;
        let mut step = |sim: &mut MicroSim, gen: &mut DemandGenerator, k: &mut u64| {
            arrivals.clear();
            gen.poll_into(&g, utilbp_core::Tick::new(*k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut report);
            *k += 1;
        };
        for _ in 0..200 {
            step(&mut sim, &mut gen, &mut k);
        }
        // Pick an occupied internal road (it has a downstream junction,
        // so closing it blocks upstream releases toward it).
        let r = (0..sim.roads.len())
            .find(|&r| sim.net.road_len(r) > 0 && sim.road_dest[r].is_some())
            .expect("an occupied internal road after warm-up");
        sim.set_road_closed(RoadId::new(r as u32), true);
        // Keep demand flowing: the rest of the network must stay live
        // while the closed road drains (on-road vehicles leave, in-box
        // vehicles still land, nothing new enters).
        let mut drained = false;
        for _ in 0..3000 {
            step(&mut sim, &mut gen, &mut k);
            if sim.net.road_len(r) == 0 && sim.roads[r].pending.iter().all(|&p| p == 0) {
                drained = true;
                break;
            }
        }
        assert!(drained, "closed road failed to drain within 3000 ticks");
        assert!(
            sim.net.active_roads().binary_search(&(r as u32)).is_err(),
            "drained road must leave the active list"
        );
        sim.verify_sensors().unwrap();

        sim.set_road_closed(RoadId::new(r as u32), false);
        let mut refilled = false;
        for _ in 0..3000 {
            step(&mut sim, &mut gen, &mut k);
            if sim.net.road_len(r) > 0 {
                refilled = true;
                break;
            }
        }
        assert!(refilled, "reopened road saw no traffic within 3000 ticks");
        assert!(
            sim.net.active_roads().binary_search(&(r as u32)).is_ok(),
            "reopened road must re-register in the active list"
        );
        sim.verify_sensors().unwrap();
    }

    /// Manual interleaved exact/batched A/B throughput probe on the
    /// 10×10 bench workload — alternating short measurement windows so
    /// shared-box drift hits both fidelities equally:
    /// `cargo test -p utilbp-microsim --release -- --ignored --nocapture fidelity_ab`.
    #[test]
    #[ignore = "manual probe"]
    fn fidelity_ab_probe() {
        use std::time::Instant;
        let run = |fidelity: Fidelity| {
            let g = GridNetwork::new(GridSpec::with_size(10, 10));
            let n = g.topology().num_intersections();
            let controllers = (0..n)
                .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
                .collect();
            let sim = MicroSim::new(
                g.topology().clone(),
                controllers,
                MicroSimConfig {
                    fidelity,
                    ..MicroSimConfig::default()
                },
            );
            let gen = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(
                    Pattern::I,
                    Ticks::new(u64::MAX / 2),
                )),
                7,
            );
            let arrivals = Vec::new();
            let report = crate::StepReport::empty();
            (sim, gen, g, arrivals, report)
        };
        let (mut ex, mut ex_gen, g, mut arrivals, mut report) = run(Fidelity::Exact);
        let (mut ba, mut ba_gen, ..) = run(Fidelity::Batched);
        let mut k = 0u64;
        for _ in 0..300u64 {
            arrivals.clear();
            ex_gen.poll_into(&g, utilbp_core::Tick::new(k), &mut arrivals);
            ex.step_into(&mut arrivals, &mut report);
            arrivals.clear();
            ba_gen.poll_into(&g, utilbp_core::Tick::new(k), &mut arrivals);
            ba.step_into(&mut arrivals, &mut report);
            k += 1;
        }
        let (mut best_ex, mut best_ba) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..6 {
            let window = 200u64;
            let t = Instant::now();
            for i in 0..window {
                arrivals.clear();
                ex_gen.poll_into(&g, utilbp_core::Tick::new(k + i), &mut arrivals);
                ex.step_into(&mut arrivals, &mut report);
            }
            best_ex = best_ex.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for i in 0..window {
                arrivals.clear();
                ba_gen.poll_into(&g, utilbp_core::Tick::new(k + i), &mut arrivals);
                ba.step_into(&mut arrivals, &mut report);
            }
            best_ba = best_ba.min(t.elapsed().as_secs_f64());
            k += window;
        }
        eprintln!(
            "exact {:.0} ticks/s, batched {:.0} ticks/s ({:.2}x)",
            200.0 / best_ex,
            200.0 / best_ba,
            best_ex / best_ba
        );
    }
}
