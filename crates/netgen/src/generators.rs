//! Non-grid network generators: arterial corridors, ring roads, and
//! asymmetric grids.
//!
//! Each generator assembles a validated [`NetworkTopology`] out of standard
//! four-way junctions ([`standard::four_way_with`] allows per-arm
//! capacities, so main roads and side streets can differ) and enumerates
//! its route sets with [`enumerate_routes`](crate::enumerate_routes),
//! producing a ready-to-drive [`Network`]. The paper's grid becomes one
//! instance among several topology families:
//!
//! - [`ArterialSpec`] — a west–east corridor of `n` junctions with a
//!   high-capacity arterial and low-capacity side streets: the asymmetric
//!   bottleneck setting capacity-aware back pressure targets;
//! - [`RingSpec`] — a one-way-pair ring of `n` junctions with outer and
//!   inner spokes: journeys traverse a variable stretch of shared ring
//!   capacity;
//! - [`AsymmetricGridSpec`] — a grid whose east–west and north–south roads
//!   have different lengths and capacities (and per-side demand), unlike
//!   the uniform [`GridSpec`](crate::GridSpec).

use utilbp_core::standard::{self, Approach};

use crate::network::{enumerate_routes, NetEntry, Network};
use crate::patterns::TurningProbabilities;
use crate::topology::{IntersectionId, NetworkTopology, Road, RoadId};

/// A west–east arterial corridor of `intersections` four-way junctions.
///
/// The arterial (east–west) roads are long and high-capacity; every
/// junction also has a north and a south side street (short, low-capacity)
/// with their own boundary entries and exits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArterialSpec {
    /// Number of junctions along the corridor (≥ 1).
    pub intersections: u32,
    /// Length of each arterial segment, meters.
    pub arterial_length_m: f64,
    /// Storage capacity of each arterial road, vehicles.
    pub arterial_capacity: u32,
    /// Length of each side street, meters.
    pub side_length_m: f64,
    /// Storage capacity of each side street, vehicles.
    pub side_capacity: u32,
    /// Maximum service rate µ of every link, vehicles per mini-slot.
    pub service_rate: f64,
    /// Mean inter-arrival time at the two arterial ends, seconds.
    pub arterial_inter_arrival_s: f64,
    /// Mean inter-arrival time at each side-street entry, seconds.
    pub side_inter_arrival_s: f64,
    /// Turning probabilities for route enumeration.
    pub turning: TurningProbabilities,
}

impl Default for ArterialSpec {
    fn default() -> Self {
        ArterialSpec {
            intersections: 5,
            arterial_length_m: 400.0,
            arterial_capacity: 160,
            side_length_m: 200.0,
            side_capacity: 40,
            service_rate: 1.0,
            arterial_inter_arrival_s: 4.0,
            side_inter_arrival_s: 15.0,
            turning: TurningProbabilities::PAPER,
        }
    }
}

impl ArterialSpec {
    /// Builds the corridor network.
    ///
    /// # Panics
    ///
    /// Panics if `intersections == 0` or any length/capacity/rate is not
    /// positive.
    pub fn build(&self) -> Network {
        assert!(self.intersections > 0, "corridor must have junctions");
        let n = self.intersections as usize;
        let layout = standard::four_way_with(
            [
                self.side_capacity,
                self.arterial_capacity,
                self.side_capacity,
                self.arterial_capacity,
            ],
            self.service_rate,
        );

        let mut b = NetworkTopology::builder();
        let iid = |i: usize| IntersectionId::new(i as u32);
        // incoming/outgoing[node][arm], arm order N, E, S, W.
        let mut incoming = vec![[RoadId::new(0); 4]; n];
        let mut outgoing = vec![[RoadId::new(0); 4]; n];
        let mut entries: Vec<NetEntry> = Vec::new();

        for i in 0..n {
            // Side streets: entry + exit both north and south.
            for side in [Approach::North, Approach::South] {
                let arm = side as usize;
                incoming[i][arm] = b.add_road(Road::new(
                    format!("side:{side}{i}->I{i}"),
                    None,
                    Some((iid(i), side.incoming())),
                    self.side_length_m,
                    self.side_capacity,
                ));
                outgoing[i][arm] = b.add_road(Road::new(
                    format!("I{i}->side:{side}{i}"),
                    Some((iid(i), side.outgoing())),
                    None,
                    self.side_length_m,
                    self.side_capacity,
                ));
                entries.push(NetEntry {
                    road: incoming[i][arm],
                    intersection: iid(i),
                    base_inter_arrival_s: self.side_inter_arrival_s,
                    name: format!("{side}-{i}"),
                });
            }
        }
        // Arterial roads west→east and east→west, including the boundary
        // stubs at both corridor ends.
        for i in 0..n {
            let west_arm = Approach::West as usize;
            let east_arm = Approach::East as usize;
            if i == 0 {
                incoming[i][west_arm] = b.add_road(Road::new(
                    "arterial:west->I0".to_string(),
                    None,
                    Some((iid(0), Approach::West.incoming())),
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                outgoing[i][west_arm] = b.add_road(Road::new(
                    "I0->arterial:west".to_string(),
                    Some((iid(0), Approach::West.outgoing())),
                    None,
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                entries.push(NetEntry {
                    road: incoming[i][west_arm],
                    intersection: iid(0),
                    base_inter_arrival_s: self.arterial_inter_arrival_s,
                    name: "west-arterial".to_string(),
                });
            }
            if i + 1 < n {
                // Eastbound: I_i east out → I_{i+1} west in.
                let east = b.add_road(Road::new(
                    format!("I{i}->I{}", i + 1),
                    Some((iid(i), Approach::East.outgoing())),
                    Some((iid(i + 1), Approach::West.incoming())),
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                outgoing[i][east_arm] = east;
                incoming[i + 1][west_arm] = east;
                // Westbound: I_{i+1} west out → I_i east in.
                let west = b.add_road(Road::new(
                    format!("I{}->I{i}", i + 1),
                    Some((iid(i + 1), Approach::West.outgoing())),
                    Some((iid(i), Approach::East.incoming())),
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                outgoing[i + 1][west_arm] = west;
                incoming[i][east_arm] = west;
            } else {
                incoming[i][east_arm] = b.add_road(Road::new(
                    format!("arterial:east->I{i}"),
                    None,
                    Some((iid(i), Approach::East.incoming())),
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                outgoing[i][east_arm] = b.add_road(Road::new(
                    format!("I{i}->arterial:east"),
                    Some((iid(i), Approach::East.outgoing())),
                    None,
                    self.arterial_length_m,
                    self.arterial_capacity,
                ));
                entries.push(NetEntry {
                    road: incoming[i][east_arm],
                    intersection: iid(i),
                    base_inter_arrival_s: self.arterial_inter_arrival_s,
                    name: "east-arterial".to_string(),
                });
            }
        }

        for (i, (inc, out)) in incoming.iter().zip(&outgoing).enumerate() {
            b.add_intersection(format!("I{i}"), layout.clone(), inc.to_vec(), out.to_vec());
        }
        let topology = b.build().expect("arterial wiring satisfies the invariants");
        finish(topology, entries, &self.turning, 1, n + 2)
    }
}

/// A ring road of `intersections` junctions with outer and inner spokes.
///
/// Each junction's east arm feeds the next junction clockwise and its west
/// arm the previous one, so the ring carries traffic in both directions;
/// the north arm is an outer spoke (boundary entry + exit) and the south
/// arm an inner spoke. Journeys enter on a spoke, travel a stretch of the
/// ring, and leave on another spoke — shared ring capacity is the
/// bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingSpec {
    /// Number of junctions on the ring (≥ 3).
    pub intersections: u32,
    /// Length of each ring segment, meters.
    pub ring_length_m: f64,
    /// Storage capacity of each ring segment, vehicles.
    pub ring_capacity: u32,
    /// Length of each spoke, meters.
    pub spoke_length_m: f64,
    /// Storage capacity of each spoke, vehicles.
    pub spoke_capacity: u32,
    /// Maximum service rate µ of every link, vehicles per mini-slot.
    pub service_rate: f64,
    /// Mean inter-arrival time at each outer spoke, seconds.
    pub outer_inter_arrival_s: f64,
    /// Mean inter-arrival time at each inner spoke, seconds.
    pub inner_inter_arrival_s: f64,
    /// Turning probabilities for route enumeration.
    pub turning: TurningProbabilities,
}

impl Default for RingSpec {
    fn default() -> Self {
        RingSpec {
            intersections: 6,
            ring_length_m: 300.0,
            ring_capacity: 120,
            spoke_length_m: 250.0,
            spoke_capacity: 60,
            service_rate: 1.0,
            outer_inter_arrival_s: 7.0,
            inner_inter_arrival_s: 10.0,
            turning: TurningProbabilities::PAPER,
        }
    }
}

impl RingSpec {
    /// Builds the ring network.
    ///
    /// # Panics
    ///
    /// Panics if `intersections < 3` or any length/capacity/rate is not
    /// positive.
    pub fn build(&self) -> Network {
        assert!(self.intersections >= 3, "a ring needs at least 3 junctions");
        let n = self.intersections as usize;
        let layout = standard::four_way_with(
            [
                self.spoke_capacity,
                self.ring_capacity,
                self.spoke_capacity,
                self.ring_capacity,
            ],
            self.service_rate,
        );

        let mut b = NetworkTopology::builder();
        let iid = |i: usize| IntersectionId::new(i as u32);
        let mut incoming = vec![[RoadId::new(0); 4]; n];
        let mut outgoing = vec![[RoadId::new(0); 4]; n];
        let mut entries: Vec<NetEntry> = Vec::new();

        for i in 0..n {
            for (side, label, mean) in [
                (Approach::North, "outer", self.outer_inter_arrival_s),
                (Approach::South, "inner", self.inner_inter_arrival_s),
            ] {
                let arm = side as usize;
                incoming[i][arm] = b.add_road(Road::new(
                    format!("{label}:{i}->I{i}"),
                    None,
                    Some((iid(i), side.incoming())),
                    self.spoke_length_m,
                    self.spoke_capacity,
                ));
                outgoing[i][arm] = b.add_road(Road::new(
                    format!("I{i}->{label}:{i}"),
                    Some((iid(i), side.outgoing())),
                    None,
                    self.spoke_length_m,
                    self.spoke_capacity,
                ));
                entries.push(NetEntry {
                    road: incoming[i][arm],
                    intersection: iid(i),
                    base_inter_arrival_s: mean,
                    name: format!("{label}-{i}"),
                });
            }
        }
        for i in 0..n {
            let next = (i + 1) % n;
            // Clockwise: I_i east out → I_next west in.
            let cw = b.add_road(Road::new(
                format!("ring:I{i}->I{next}"),
                Some((iid(i), Approach::East.outgoing())),
                Some((iid(next), Approach::West.incoming())),
                self.ring_length_m,
                self.ring_capacity,
            ));
            outgoing[i][Approach::East as usize] = cw;
            incoming[next][Approach::West as usize] = cw;
            // Counterclockwise: I_next west out → I_i east in.
            let ccw = b.add_road(Road::new(
                format!("ring:I{next}->I{i}"),
                Some((iid(next), Approach::West.outgoing())),
                Some((iid(i), Approach::East.incoming())),
                self.ring_length_m,
                self.ring_capacity,
            ));
            outgoing[next][Approach::West as usize] = ccw;
            incoming[i][Approach::East as usize] = ccw;
        }

        for (i, (inc, out)) in incoming.iter().zip(&outgoing).enumerate() {
            b.add_intersection(format!("I{i}"), layout.clone(), inc.to_vec(), out.to_vec());
        }
        let topology = b.build().expect("ring wiring satisfies the invariants");
        // Two turns: onto the ring, then off it. Hop budget caps laps.
        finish(topology, entries, &self.turning, 2, n + 1)
    }
}

/// A rectangular grid with asymmetric axes: east–west and north–south
/// roads differ in length, capacity, and demand, unlike the uniform
/// [`GridSpec`](crate::GridSpec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricGridSpec {
    /// Number of intersection rows (≥ 1).
    pub rows: u32,
    /// Number of intersection columns (≥ 1).
    pub cols: u32,
    /// Length of east–west roads, meters.
    pub ew_length_m: f64,
    /// Storage capacity of east–west roads, vehicles.
    pub ew_capacity: u32,
    /// Length of north–south roads, meters.
    pub ns_length_m: f64,
    /// Storage capacity of north–south roads, vehicles.
    pub ns_capacity: u32,
    /// Maximum service rate µ of every link, vehicles per mini-slot.
    pub service_rate: f64,
    /// Mean inter-arrival time per entry, by the side vehicles come from
    /// (North, East, South, West), seconds.
    pub inter_arrival_s: [f64; 4],
    /// Turning probabilities for route enumeration.
    pub turning: TurningProbabilities,
}

impl Default for AsymmetricGridSpec {
    fn default() -> Self {
        AsymmetricGridSpec {
            rows: 3,
            cols: 3,
            ew_length_m: 400.0,
            ew_capacity: 160,
            ns_length_m: 250.0,
            ns_capacity: 60,
            service_rate: 1.0,
            inter_arrival_s: [4.0, 6.0, 8.0, 6.0],
            turning: TurningProbabilities::PAPER,
        }
    }
}

impl AsymmetricGridSpec {
    /// Road length and capacity for a road leaving toward `dir`.
    fn road_params(&self, dir: Approach) -> (f64, u32) {
        match dir {
            Approach::North | Approach::South => (self.ns_length_m, self.ns_capacity),
            Approach::East | Approach::West => (self.ew_length_m, self.ew_capacity),
        }
    }

    /// Builds the asymmetric grid network.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0` or any length/capacity/rate is
    /// not positive.
    pub fn build(&self) -> Network {
        assert!(self.rows > 0 && self.cols > 0, "grid must be non-empty");
        let rows = self.rows;
        let cols = self.cols;
        // Outgoing-arm capacities in N, E, S, W order.
        let layout = standard::four_way_with(
            [
                self.ns_capacity,
                self.ew_capacity,
                self.ns_capacity,
                self.ew_capacity,
            ],
            self.service_rate,
        );

        let mut b = NetworkTopology::builder();
        let iid = |row: u32, col: u32| IntersectionId::new(row * cols + col);
        let cells = (rows * cols) as usize;
        let mut incoming = vec![[RoadId::new(0); 4]; cells];
        let mut outgoing = vec![[RoadId::new(0); 4]; cells];
        let mut entries: Vec<NetEntry> = Vec::new();

        for row in 0..rows {
            for col in 0..cols {
                let here = iid(row, col);
                for dir in Approach::ALL {
                    let (length, capacity) = self.road_params(dir);
                    let neighbor = match dir {
                        Approach::North => row.checked_sub(1).map(|r| (r, col)),
                        Approach::South => (row + 1 < rows).then_some((row + 1, col)),
                        Approach::West => col.checked_sub(1).map(|c| (row, c)),
                        Approach::East => (col + 1 < cols).then_some((row, col + 1)),
                    };
                    match neighbor {
                        Some((nr, nc)) => {
                            // Internal roads are created when scanning the
                            // source cell; each direction once.
                            let there = iid(nr, nc);
                            let in_arm = dir.opposite().incoming();
                            let rid = b.add_road(Road::new(
                                format!("I({row},{col}):{dir}->I({nr},{nc})"),
                                Some((here, dir.outgoing())),
                                Some((there, in_arm)),
                                length,
                                capacity,
                            ));
                            outgoing[here.index()][dir as usize] = rid;
                            incoming[there.index()][in_arm.index()] = rid;
                        }
                        None => {
                            let exit = b.add_road(Road::new(
                                format!("I({row},{col}):{dir}->boundary"),
                                Some((here, dir.outgoing())),
                                None,
                                length,
                                capacity,
                            ));
                            outgoing[here.index()][dir as usize] = exit;
                            let entry = b.add_road(Road::new(
                                format!("boundary:{dir}->I({row},{col})"),
                                None,
                                Some((here, dir.incoming())),
                                length,
                                capacity,
                            ));
                            incoming[here.index()][dir as usize] = entry;
                            let slot = match dir {
                                Approach::North | Approach::South => col,
                                Approach::East | Approach::West => row,
                            };
                            entries.push(NetEntry {
                                road: entry,
                                intersection: here,
                                base_inter_arrival_s: self.inter_arrival_s[dir as usize],
                                name: format!("{dir}-{slot}"),
                            });
                        }
                    }
                }
            }
        }

        for (cell, (inc, out)) in incoming.iter().zip(&outgoing).enumerate() {
            let (row, col) = (cell as u32 / cols, cell as u32 % cols);
            b.add_intersection(
                format!("I({row},{col})"),
                layout.clone(),
                inc.to_vec(),
                out.to_vec(),
            );
        }
        let topology = b
            .build()
            .expect("asymmetric grid wiring satisfies the invariants");
        let max_hops = (rows + cols) as usize + 2;
        finish(topology, entries, &self.turning, 1, max_hops)
    }
}

/// Sorts entries deterministically, enumerates each entry's routes, and
/// assembles the [`Network`].
fn finish(
    topology: NetworkTopology,
    mut entries: Vec<NetEntry>,
    turning: &TurningProbabilities,
    max_turns: usize,
    max_hops: usize,
) -> Network {
    entries.sort_by_key(|e| e.road);
    let routes = entries
        .iter()
        .map(|e| enumerate_routes(&topology, e.road, turning, max_turns, max_hops))
        .collect();
    Network::new(topology, entries, routes).expect("generated networks enumerate consistently")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arterial_builds_and_routes_exit() {
        let spec = ArterialSpec::default();
        let net = spec.build();
        let n = spec.intersections as usize;
        assert_eq!(net.topology().num_intersections(), n);
        // 4 side roads per node + 2(n-1) internal arterial + 4 boundary
        // arterial stubs.
        assert_eq!(net.topology().num_roads(), 4 * n + 2 * (n - 1) + 4);
        // 2 side entries per node + both arterial ends.
        assert_eq!(net.num_entries(), 2 * n + 2);
        for idx in 0..net.num_entries() {
            for opt in net.route_options(idx) {
                assert!(net.topology().road(*opt.roads.last().unwrap()).is_exit());
            }
        }
        // The west arterial entry has a straight-through route crossing
        // every junction.
        let west = net
            .entries()
            .iter()
            .position(|e| e.name == "west-arterial")
            .unwrap();
        assert!(net.route_options(west).iter().any(|o| o.route.len() == n));
    }

    #[test]
    fn arterial_capacities_differ_by_axis() {
        let spec = ArterialSpec::default();
        let net = spec.build();
        let caps: Vec<u32> = net
            .topology()
            .road_ids()
            .map(|r| net.topology().road(r).capacity())
            .collect();
        assert!(caps.contains(&spec.arterial_capacity));
        assert!(caps.contains(&spec.side_capacity));
    }

    #[test]
    fn ring_builds_with_spoke_journeys() {
        let spec = RingSpec::default();
        let net = spec.build();
        let n = spec.intersections as usize;
        assert_eq!(net.topology().num_intersections(), n);
        // 4 spoke roads per node + 2n ring segments.
        assert_eq!(net.topology().num_roads(), 6 * n);
        assert_eq!(net.num_entries(), 2 * n);
        // Some route from an outer spoke travels ≥ 2 ring segments before
        // exiting (enter + at least two ring hops).
        let outer = net
            .entries()
            .iter()
            .position(|e| e.name == "outer-0")
            .unwrap();
        assert!(net.route_options(outer).iter().any(|o| o.route.len() >= 3));
        // And the trivial crossing to the inner spoke exists.
        assert!(net.route_options(outer).iter().any(|o| o.route.len() == 1));
    }

    #[test]
    fn asymmetric_grid_axes_differ() {
        let spec = AsymmetricGridSpec::default();
        let net = spec.build();
        assert_eq!(net.topology().num_intersections(), 9);
        assert_eq!(net.topology().num_roads(), 48);
        assert_eq!(net.num_entries(), 12);
        let topo = net.topology();
        let mut saw_ew = false;
        let mut saw_ns = false;
        for r in topo.road_ids() {
            let road = topo.road(r);
            if road.capacity() == spec.ew_capacity {
                assert_eq!(road.length_m(), spec.ew_length_m);
                saw_ew = true;
            } else {
                assert_eq!(road.capacity(), spec.ns_capacity);
                assert_eq!(road.length_m(), spec.ns_length_m);
                saw_ns = true;
            }
        }
        assert!(saw_ew && saw_ns);
        // North entries are the heaviest per the default spec.
        let north = net
            .entries()
            .iter()
            .find(|e| e.name.starts_with("north"))
            .unwrap();
        assert_eq!(north.base_inter_arrival_s, spec.inter_arrival_s[0]);
    }

    #[test]
    fn single_junction_arterial_is_valid() {
        let net = ArterialSpec {
            intersections: 1,
            ..ArterialSpec::default()
        }
        .build();
        assert_eq!(net.topology().num_intersections(), 1);
        assert_eq!(net.num_entries(), 4);
    }
}
