//! Topology-agnostic routable networks.
//!
//! [`GridNetwork`](crate::GridNetwork) bakes the paper's grid geometry into
//! its routing; a [`Network`] decouples the two so *any* validated
//! [`NetworkTopology`] of standard four-way junctions can drive a demand
//! generator. A network is a topology plus, per boundary entry, the
//! pre-enumerated weighted routes vehicles may take ([`RouteOption`]s).
//! Routes are stored behind [`Arc`] so sampling one never allocates.
//!
//! [`enumerate_routes`] produces the route set generically: starting from
//! an entry road it walks the topology, continuing straight or spending one
//! of a bounded number of turns at each junction, and keeps every path that
//! reaches a boundary exit. Per-hop weights follow a memoryless turning
//! model (the probability of each movement at a junction is given by a
//! [`TurningProbabilities`] table, applied to the arm the vehicle arrives
//! from), so route weights are products of per-hop probabilities — the
//! grid's "straight or one random turn" demand is the `max_turns = 1`
//! instance of this scheme.

use std::sync::Arc;

use utilbp_core::standard::{self, Approach};

use crate::grid::GridNetwork;
use crate::patterns::{Pattern, TurningProbabilities};
use crate::route::Route;
use crate::topology::{IntersectionId, NetworkTopology, RoadId};

/// One boundary entry of a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetEntry {
    /// The boundary entry road vehicles appear on.
    pub road: RoadId,
    /// The intersection the entry road feeds.
    pub intersection: IntersectionId,
    /// Base mean inter-arrival time at this entry, in seconds (before any
    /// scenario-level rate scaling).
    pub base_inter_arrival_s: f64,
    /// Human-readable label (e.g. `"west-arterial"`).
    pub name: String,
}

/// One candidate journey from an entry, with its sampling weight and the
/// roads it traverses (entry road, every internal road, final exit road).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOption {
    /// Relative sampling weight (positive; normalized at sampling time).
    pub weight: f64,
    /// The journey, shared so sampling clones a pointer, not a route.
    pub route: Arc<Route>,
    /// Every road the journey touches, in travel order. Closure-aware
    /// demand uses this to exclude routes through closed roads without
    /// re-deriving them from the topology.
    pub roads: Vec<RoadId>,
}

/// A routable network: a validated topology of four-way junctions plus the
/// weighted route set of every boundary entry.
///
/// # Examples
///
/// ```
/// use utilbp_netgen::{GridNetwork, GridSpec, Network, Pattern};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let net = Network::from_grid(&grid, Pattern::II);
/// assert_eq!(net.num_entries(), 12);
/// assert!(net.route_options(0).len() >= 7); // straight + 2 turns × 3 rows
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topology: NetworkTopology,
    entries: Vec<NetEntry>,
    /// Route options per entry, parallel to `entries`.
    routes: Vec<Vec<RouteOption>>,
}

impl Network {
    /// Assembles a network from its parts, validating that every entry is
    /// a boundary entry road, that each entry has at least one route, and
    /// that every route starts on its entry road with a positive weight.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn new(
        topology: NetworkTopology,
        entries: Vec<NetEntry>,
        routes: Vec<Vec<RouteOption>>,
    ) -> Result<Self, String> {
        if entries.len() != routes.len() {
            return Err(format!(
                "{} entries but {} route sets",
                entries.len(),
                routes.len()
            ));
        }
        for (i, entry) in entries.iter().enumerate() {
            if entry.road.index() >= topology.num_roads() {
                return Err(format!("entry {} references unknown road", entry.name));
            }
            if !topology.road(entry.road).is_entry() {
                return Err(format!("entry {} road is not a boundary entry", entry.name));
            }
            if !(entry.base_inter_arrival_s.is_finite() && entry.base_inter_arrival_s > 0.0) {
                return Err(format!(
                    "entry {} has non-positive inter-arrival time",
                    entry.name
                ));
            }
            if routes[i].is_empty() {
                return Err(format!("entry {} has no routes", entry.name));
            }
            for opt in &routes[i] {
                if opt.route.entry() != entry.road {
                    return Err(format!(
                        "a route of entry {} starts on the wrong road",
                        entry.name
                    ));
                }
                if !(opt.weight.is_finite() && opt.weight > 0.0) {
                    return Err(format!(
                        "a route of entry {} has non-positive weight",
                        entry.name
                    ));
                }
            }
        }
        Ok(Network {
            topology,
            entries,
            routes,
        })
    }

    /// The underlying validated topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Number of boundary entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// All entries, in table order.
    pub fn entries(&self) -> &[NetEntry] {
        &self.entries
    }

    /// The route options of entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn route_options(&self, idx: usize) -> &[RouteOption] {
        &self.routes[idx]
    }

    /// Builds a network from a grid, with every route set enumerated via
    /// [`enumerate_routes`] at `max_turns = 1` (the paper's "straight or
    /// one turn" demand model) and per-side base inter-arrival times from
    /// `pattern` (Table II).
    ///
    /// # Panics
    ///
    /// Panics if route enumeration yields an inconsistent network, which
    /// grid construction rules out.
    pub fn from_grid(grid: &GridNetwork, pattern: Pattern) -> Network {
        let topology = grid.topology().clone();
        let turning = TurningProbabilities::PAPER;
        let mut entries = Vec::new();
        let mut routes = Vec::new();
        let max_hops = 2 * (grid.spec().rows + grid.spec().cols) as usize + 2;
        for point in grid.entries() {
            entries.push(NetEntry {
                road: point.road,
                intersection: point.intersection,
                base_inter_arrival_s: pattern.inter_arrival_s(point.side),
                name: format!("{}-{}", point.side, point.slot),
            });
            routes.push(enumerate_routes(
                &topology, point.road, &turning, 1, max_hops,
            ));
        }
        Network::new(topology, entries, routes).expect("grid networks enumerate consistently")
    }
}

/// Enumerates every journey from `entry` that reaches a boundary exit
/// within `max_hops` junction crossings, making at most `max_turns`
/// non-straight movements.
///
/// `entry` may be any road that feeds an intersection — a boundary entry
/// when building a [`Network`]'s per-entry route sets, or an *internal*
/// road when continuing a journey mid-network (the en-route replanning
/// of [`crate::Replanner`] enumerates detours this way).
///
/// Weights follow a memoryless turning model: at each junction the vehicle
/// goes straight, left, or right with the probability `turning` assigns to
/// the arm it arrives from, and a route's weight is the product of its
/// per-hop probabilities. Movements with zero probability are not
/// explored; paths that fail to exit within `max_hops` (e.g. laps of a
/// ring road) are dropped.
///
/// Every intersection on the walk must use the standard four-way link
/// table ([`standard::four_way`] or [`standard::four_way_with`]); other
/// layouts make the turn geometry undefined.
///
/// # Panics
///
/// Panics if `entry` is a boundary exit road (it feeds no intersection)
/// or a traversed intersection is not a standard four-way junction.
pub fn enumerate_routes(
    topology: &NetworkTopology,
    entry: RoadId,
    turning: &TurningProbabilities,
    max_turns: usize,
    max_hops: usize,
) -> Vec<RouteOption> {
    let (start_i, start_arm) = topology
        .road(entry)
        .dest()
        .expect("route enumeration starts at a road that feeds an intersection");
    let start_approach =
        Approach::from_incoming(start_arm).expect("entry feeds a four-way incoming arm");

    let mut out = Vec::new();
    let mut hops: Vec<(IntersectionId, utilbp_core::LinkId)> = Vec::new();
    let mut roads: Vec<RoadId> = vec![entry];
    walk(
        topology,
        entry,
        start_i,
        start_approach,
        1.0,
        max_turns,
        max_hops,
        turning,
        &mut hops,
        &mut roads,
        &mut out,
    );
    out
}

/// Depth-first walk behind [`enumerate_routes`].
#[allow(clippy::too_many_arguments)]
fn walk(
    topology: &NetworkTopology,
    entry: RoadId,
    here: IntersectionId,
    approach: Approach,
    weight: f64,
    turns_left: usize,
    hops_left: usize,
    turning: &TurningProbabilities,
    hops: &mut Vec<(IntersectionId, utilbp_core::LinkId)>,
    roads: &mut Vec<RoadId>,
    out: &mut Vec<RouteOption>,
) {
    if hops_left == 0 {
        return;
    }
    let node = topology.intersection(here);
    assert_eq!(
        node.layout().num_links(),
        12,
        "route enumeration requires standard four-way junctions"
    );
    for turn in standard::Turn::ALL {
        let p = match turn {
            standard::Turn::Straight => turning.straight(approach),
            standard::Turn::Left => turning.left(approach),
            standard::Turn::Right => turning.right(approach),
        };
        if p <= 0.0 {
            continue;
        }
        if turn != standard::Turn::Straight && turns_left == 0 {
            continue;
        }
        let link = standard::link_id(approach, turn);
        let exit_arm = turn.exit_from(approach);
        let next_road = node.outgoing_road(exit_arm.outgoing());
        hops.push((here, link));
        roads.push(next_road);
        match topology.road(next_road).dest() {
            None => out.push(RouteOption {
                weight: weight * p,
                route: Arc::new(Route::new(entry, hops.clone())),
                roads: roads.clone(),
            }),
            Some((there, in_arm)) => {
                let next_approach =
                    Approach::from_incoming(in_arm).expect("four-way arm indices map to compass");
                walk(
                    topology,
                    entry,
                    there,
                    next_approach,
                    weight * p,
                    turns_left - usize::from(turn != standard::Turn::Straight),
                    hops_left - 1,
                    turning,
                    hops,
                    roads,
                    out,
                );
            }
        }
        hops.pop();
        roads.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    #[test]
    fn grid_enumeration_matches_route_choices() {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        assert_eq!(net.num_entries(), 12);
        for idx in 0..net.num_entries() {
            // Straight + {left, right} × 3 candidate turning intersections.
            let options = net.route_options(idx);
            assert_eq!(options.len(), 7, "entry {idx}");
            let total: f64 = options.iter().map(|o| o.weight).sum();
            assert!(total > 0.0 && total <= 1.0 + 1e-9);
            for opt in options {
                assert_eq!(opt.route.entry(), net.entries()[idx].road);
                // Road list: entry + one road per hop.
                assert_eq!(opt.roads.len(), opt.route.len() + 1);
                assert!(net.topology().road(*opt.roads.last().unwrap()).is_exit());
                for &mid in &opt.roads[1..opt.roads.len() - 1] {
                    assert!(net.topology().road(mid).is_internal());
                }
            }
        }
    }

    #[test]
    fn base_rates_follow_the_pattern() {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::I);
        let north = net
            .entries()
            .iter()
            .find(|e| e.name.starts_with("north"))
            .unwrap();
        let west = net
            .entries()
            .iter()
            .find(|e| e.name.starts_with("west"))
            .unwrap();
        assert_eq!(north.base_inter_arrival_s, 3.0);
        assert_eq!(west.base_inter_arrival_s, 9.0);
    }

    #[test]
    fn zero_max_turns_leaves_only_the_straight_route() {
        let grid = GridNetwork::new(GridSpec::paper());
        let topology = grid.topology();
        let entry = grid.entries()[0].road;
        let options = enumerate_routes(topology, entry, &TurningProbabilities::PAPER, 0, 16);
        assert_eq!(options.len(), 1);
        assert_eq!(options[0].route.len(), 3, "crosses the full column");
    }

    #[test]
    fn network_validation_rejects_mismatched_routes() {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let mut entries = net.entries().to_vec();
        let mut routes: Vec<Vec<RouteOption>> = (0..net.num_entries())
            .map(|i| net.route_options(i).to_vec())
            .collect();
        // Swap one entry's road so its routes start on the wrong road.
        let other = entries[1].road;
        entries[0].road = other;
        let err = Network::new(net.topology().clone(), entries.clone(), routes.clone())
            .expect_err("mismatched entry road must be rejected");
        assert!(err.contains("wrong road"), "{err}");
        // Empty route set.
        entries[0].road = net.entries()[0].road;
        routes[0].clear();
        let err = Network::new(net.topology().clone(), entries, routes)
            .expect_err("empty route set must be rejected");
        assert!(err.contains("no routes"), "{err}");
    }
}
