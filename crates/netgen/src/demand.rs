//! Stochastic demand generation: Poisson arrivals with routed vehicles.
//!
//! The paper models arrivals at each entry road as a Poisson process
//! (Section II-B); equivalently, inter-arrival times are exponential with
//! the Table II means. A [`DemandGenerator`] owns one exponential clock per
//! entry road, samples each arriving vehicle's turn from Table I, and picks
//! its turning intersection uniformly along its straight path, exactly as
//! described in Section V.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use utilbp_core::standard::Turn;
use utilbp_core::Tick;
use utilbp_metrics::VehicleId;

use crate::grid::{EntryPoint, GridNetwork, RouteChoice};
use crate::patterns::{DemandSchedule, TurningProbabilities};
use crate::route::Route;

/// One vehicle appearing at the network boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// The new vehicle's id (unique within the generator's lifetime).
    pub vehicle: VehicleId,
    /// The arrival instant.
    pub tick: Tick,
    /// The vehicle's full route, shared with the generator's route cache —
    /// injecting a vehicle clones a pointer, never a route.
    pub route: Arc<Route>,
}

/// Configuration of a [`DemandGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandConfig {
    /// The arrival schedule (Table II pattern(s)).
    pub schedule: DemandSchedule,
    /// Turning probabilities (Table I).
    pub turning: TurningProbabilities,
    /// Wall-clock seconds per tick (the mini-slot length `Δt`; 1 s in the
    /// paper).
    pub dt_seconds: f64,
}

impl DemandConfig {
    /// A config with the paper's turning probabilities and `Δt = 1 s`.
    pub fn new(schedule: DemandSchedule) -> Self {
        DemandConfig {
            schedule,
            turning: TurningProbabilities::PAPER,
            dt_seconds: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct EntryClock {
    point: EntryPoint,
    /// Absolute time (seconds) of the next arrival at this entry.
    next_arrival_s: f64,
}

/// Seeded, deterministic generator of routed vehicle arrivals.
///
/// # Examples
///
/// ```
/// use utilbp_core::{Tick, Ticks};
/// use utilbp_netgen::{
///     DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec,
///     Pattern,
/// };
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let config = DemandConfig::new(DemandSchedule::constant(
///     Pattern::II,
///     Ticks::new(600),
/// ));
/// let mut demand = DemandGenerator::new(&grid, config, 42);
/// let mut total = 0;
/// for k in 0..600 {
///     total += demand.poll(&grid, Tick::new(k)).len();
/// }
/// // 12 entries × (600 s / 6 s) = 1200 expected arrivals.
/// assert!(total > 900 && total < 1500, "got {total}");
/// ```
#[derive(Debug, Clone)]
pub struct DemandGenerator {
    config: DemandConfig,
    clocks: Vec<EntryClock>,
    /// Per entry: every route the paper's demand model can sample, indexed
    /// by [`choice_index`]. Precomputed once so injection is
    /// allocation-free — sampling clones an [`Arc`], not a route.
    route_cache: Vec<Vec<Arc<Route>>>,
    rng: SmallRng,
    next_vehicle: u64,
}

/// The cache slot of a [`RouteChoice`] for an entry whose straight path
/// crosses `path_len` intersections: slot 0 is the straight route, then
/// `(left, right)` pairs per turning intersection.
fn choice_index(choice: RouteChoice) -> usize {
    match choice {
        RouteChoice::Straight => 0,
        RouteChoice::TurnAt { turn, path_index } => {
            1 + path_index * 2 + usize::from(turn == Turn::Right)
        }
    }
}

impl DemandGenerator {
    /// Creates a generator for `grid`'s entry points.
    ///
    /// The same `(grid, config, seed)` triple always produces the same
    /// arrival stream, which is what makes every experiment in this
    /// workspace reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `config.dt_seconds` is not strictly positive and finite.
    pub fn new(grid: &GridNetwork, config: DemandConfig, seed: u64) -> Self {
        assert!(
            config.dt_seconds.is_finite() && config.dt_seconds > 0.0,
            "dt_seconds must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let clocks = grid
            .entries()
            .iter()
            .map(|&point| {
                let mean = config
                    .schedule
                    .pattern_at(Tick::ZERO)
                    .inter_arrival_s(point.side);
                let first = exponential(&mut rng, mean);
                EntryClock {
                    point,
                    next_arrival_s: first,
                }
            })
            .collect();
        // Precompute every route the demand model can sample (straight plus
        // one left/right turn at each intersection along the straight
        // path), in `choice_index` order.
        let route_cache = grid
            .entries()
            .iter()
            .map(|point| {
                let path_len = grid.straight_path_len(point.side) as usize;
                let mut routes = Vec::with_capacity(1 + 2 * path_len);
                routes.push(Arc::new(grid.route(point, RouteChoice::Straight)));
                for path_index in 0..path_len {
                    for turn in [Turn::Left, Turn::Right] {
                        let choice = RouteChoice::TurnAt { turn, path_index };
                        debug_assert_eq!(choice_index(choice), routes.len());
                        routes.push(Arc::new(grid.route(point, choice)));
                    }
                }
                routes
            })
            .collect();
        DemandGenerator {
            config,
            clocks,
            route_cache,
            rng,
            next_vehicle: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &DemandConfig {
        &self.config
    }

    /// Number of vehicles generated so far.
    pub fn generated(&self) -> u64 {
        self.next_vehicle
    }

    /// Returns all vehicles arriving during the mini-slot `[tick, tick+1)`,
    /// with their sampled routes.
    ///
    /// Must be called with non-decreasing ticks; skipping ticks skips the
    /// arrivals that would have fallen in them.
    pub fn poll(&mut self, grid: &GridNetwork, tick: Tick) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        self.poll_into(grid, tick, &mut arrivals);
        arrivals
    }

    /// Allocation-free variant of [`poll`](Self::poll): appends this
    /// mini-slot's arrivals to `arrivals` (typically a cleared, reused
    /// buffer), so a steady-state simulation loop allocates nothing per
    /// tick on the demand side.
    pub fn poll_into(&mut self, grid: &GridNetwork, tick: Tick, arrivals: &mut Vec<Arrival>) {
        let window_end = (tick.index() + 1) as f64 * self.config.dt_seconds;
        let pattern = self.config.schedule.pattern_at(tick);
        for i in 0..self.clocks.len() {
            let point = self.clocks[i].point;
            let mean = pattern.inter_arrival_s(point.side);
            while self.clocks[i].next_arrival_s < window_end {
                let vehicle = VehicleId::new(self.next_vehicle);
                self.next_vehicle += 1;
                let route = self.sample_route(grid, i, &point);
                arrivals.push(Arrival {
                    vehicle,
                    tick,
                    route,
                });
                let gap = exponential(&mut self.rng, mean);
                self.clocks[i].next_arrival_s += gap;
            }
        }
    }

    /// Samples a route for a vehicle entering at `point`: turn per Table I,
    /// turning intersection uniform along the straight path. Returns a
    /// shared handle into the precomputed route cache — no allocation.
    fn sample_route(&mut self, grid: &GridNetwork, entry: usize, point: &EntryPoint) -> Arc<Route> {
        let u: f64 = self.rng.gen();
        let turn = self.config.turning.turn_for(point.side, u);
        let choice = match turn {
            Turn::Straight => RouteChoice::Straight,
            turn => {
                let path_len = grid.straight_path_len(point.side) as usize;
                let path_index = self.rng.gen_range(0..path_len);
                RouteChoice::TurnAt { turn, path_index }
            }
        };
        Arc::clone(&self.route_cache[entry][choice_index(choice)])
    }
}

/// Inverse-transform sample of an exponential with the given mean.
fn exponential(rng: &mut SmallRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::patterns::Pattern;
    use utilbp_core::standard::Approach;
    use utilbp_core::Ticks;

    fn grid() -> GridNetwork {
        GridNetwork::new(GridSpec::paper())
    }

    fn config(pattern: Pattern, duration: u64) -> DemandConfig {
        DemandConfig::new(DemandSchedule::constant(pattern, Ticks::new(duration)))
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let g = grid();
        let mut a = DemandGenerator::new(&g, config(Pattern::I, 100), 7);
        let mut b = DemandGenerator::new(&g, config(Pattern::I, 100), 7);
        for k in 0..100 {
            assert_eq!(a.poll(&g, Tick::new(k)), b.poll(&g, Tick::new(k)));
        }
        let mut c = DemandGenerator::new(&g, config(Pattern::I, 100), 8);
        let totals: usize = (0..100).map(|k| c.poll(&g, Tick::new(k)).len()).sum();
        let totals_a = a.generated() as usize;
        // Different seeds almost surely differ in arrival count over 100 s.
        assert_ne!(totals, 0);
        assert_ne!(totals_a, 0);
    }

    #[test]
    fn arrival_rates_match_pattern_ii() {
        let g = grid();
        let horizon = 20_000u64;
        let mut demand = DemandGenerator::new(&g, config(Pattern::II, horizon), 1);
        let mut count = 0usize;
        for k in 0..horizon {
            count += demand.poll(&g, Tick::new(k)).len();
        }
        // Expected: 12 entries / 6 s = 2 veh/s → 40 000 vehicles.
        let expected = 12.0 * horizon as f64 / 6.0;
        let rel = (count as f64 - expected).abs() / expected;
        assert!(rel < 0.05, "count {count} vs expected {expected}");
    }

    #[test]
    fn pattern_i_sides_are_ordered_by_load() {
        let g = grid();
        let horizon = 30_000u64;
        let mut demand = DemandGenerator::new(&g, config(Pattern::I, horizon), 2);
        let mut per_side = [0usize; 4];
        for k in 0..horizon {
            for a in demand.poll(&g, Tick::new(k)) {
                let entry = g
                    .entries()
                    .iter()
                    .find(|e| e.road == a.route.entry())
                    .unwrap();
                per_side[entry.side as usize] += 1;
            }
        }
        // N (3 s) > E (5 s) > S (7 s) > W (9 s).
        assert!(per_side[Approach::North as usize] > per_side[Approach::East as usize]);
        assert!(per_side[Approach::East as usize] > per_side[Approach::South as usize]);
        assert!(per_side[Approach::South as usize] > per_side[Approach::West as usize]);
    }

    #[test]
    fn turning_shares_match_table1() {
        let g = grid();
        let horizon = 40_000u64;
        let mut demand = DemandGenerator::new(&g, config(Pattern::II, horizon), 3);
        let mut north_turns = [0usize; 3]; // left, straight, right
        for k in 0..horizon {
            for a in demand.poll(&g, Tick::new(k)) {
                let entry = g
                    .entries()
                    .iter()
                    .find(|e| e.road == a.route.entry())
                    .unwrap();
                if entry.side != Approach::North {
                    continue;
                }
                // Classify by whether/where the route turns.
                let first_links: Vec<_> = a.route.hops().iter().map(|&(_, l)| l).collect();
                let turned_left = first_links
                    .iter()
                    .any(|&l| l == utilbp_core::standard::link_id(Approach::North, Turn::Left));
                let turned_right = first_links
                    .iter()
                    .any(|&l| l == utilbp_core::standard::link_id(Approach::North, Turn::Right));
                if turned_left {
                    north_turns[0] += 1;
                } else if turned_right {
                    north_turns[2] += 1;
                } else {
                    north_turns[1] += 1;
                }
            }
        }
        let total: usize = north_turns.iter().sum();
        let share = |n: usize| n as f64 / total as f64;
        assert!(
            (share(north_turns[0]) - 0.2).abs() < 0.03,
            "left {north_turns:?}"
        );
        assert!(
            (share(north_turns[1]) - 0.4).abs() < 0.03,
            "straight {north_turns:?}"
        );
        assert!(
            (share(north_turns[2]) - 0.4).abs() < 0.03,
            "right {north_turns:?}"
        );
    }

    #[test]
    fn vehicle_ids_are_unique_and_sequential() {
        let g = grid();
        let mut demand = DemandGenerator::new(&g, config(Pattern::I, 200), 4);
        let mut seen = std::collections::HashSet::new();
        for k in 0..200 {
            for a in demand.poll(&g, Tick::new(k)) {
                assert!(seen.insert(a.vehicle), "duplicate id {}", a.vehicle);
                assert_eq!(a.tick, Tick::new(k));
            }
        }
        assert_eq!(seen.len() as u64, demand.generated());
    }

    #[test]
    fn mixed_schedule_shifts_rates() {
        let g = grid();
        // 1000 ticks of I (north-heavy) then 1000 of IV (north-heavy but
        // everything else light): total counts should drop in segment 2 on
        // the east side.
        let schedule = DemandSchedule::from_segments(vec![
            (Ticks::new(5000), Pattern::I),
            (Ticks::new(5000), Pattern::IV),
        ]);
        let mut demand = DemandGenerator::new(&g, DemandConfig::new(schedule), 5);
        let mut east_counts = [0usize; 2];
        for k in 0..10_000u64 {
            for a in demand.poll(&g, Tick::new(k)) {
                let entry = g
                    .entries()
                    .iter()
                    .find(|e| e.road == a.route.entry())
                    .unwrap();
                if entry.side == Approach::East {
                    east_counts[(k / 5000) as usize] += 1;
                }
            }
        }
        // East: 5 s mean in I vs 9 s in IV.
        assert!(
            east_counts[0] as f64 > east_counts[1] as f64 * 1.3,
            "{east_counts:?}"
        );
    }

    #[test]
    fn cached_routes_match_fresh_construction() {
        let g = grid();
        let demand = DemandGenerator::new(&g, config(Pattern::I, 10), 0);
        for (entry, point) in g.entries().iter().enumerate() {
            let path_len = g.straight_path_len(point.side) as usize;
            let mut choices = vec![RouteChoice::Straight];
            for path_index in 0..path_len {
                for turn in [Turn::Left, Turn::Right] {
                    choices.push(RouteChoice::TurnAt { turn, path_index });
                }
            }
            assert_eq!(demand.route_cache[entry].len(), choices.len());
            for choice in choices {
                assert_eq!(
                    *demand.route_cache[entry][choice_index(choice)],
                    g.route(point, choice),
                    "{choice:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dt_seconds")]
    fn rejects_bad_dt() {
        let g = grid();
        let mut cfg = config(Pattern::I, 10);
        cfg.dt_seconds = 0.0;
        let _ = DemandGenerator::new(&g, cfg, 0);
    }
}
