//! Network-level topology: intersections wired together by directed roads.
//!
//! [`IntersectionLayout`](utilbp_core::IntersectionLayout) models a single
//! junction in isolation; a [`NetworkTopology`] instantiates many of them
//! and connects their arms with [`Road`]s. Each road is directed and either
//! originates at an intersection's outgoing arm or at the network boundary
//! (an *entry* road), and either terminates at an intersection's incoming
//! arm or at the boundary (an *exit* road).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use utilbp_core::{IncomingId, IntersectionLayout, OutgoingId};

/// Identifier of an intersection within a [`NetworkTopology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IntersectionId(u32);

impl IntersectionId {
    /// Creates an id from an index into the intersection table.
    pub const fn new(index: u32) -> Self {
        IntersectionId(index)
    }

    /// The index into the intersection table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IntersectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// Identifier of a directed road within a [`NetworkTopology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RoadId(u32);

impl RoadId {
    /// Creates an id from an index into the road table.
    pub const fn new(index: u32) -> Self {
        RoadId(index)
    }

    /// The index into the road table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RoadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One directed road.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    name: String,
    /// `(intersection, outgoing arm)` feeding this road, or `None` for a
    /// boundary entry road.
    source: Option<(IntersectionId, OutgoingId)>,
    /// `(intersection, incoming arm)` this road feeds, or `None` for a
    /// boundary exit road.
    dest: Option<(IntersectionId, IncomingId)>,
    length_m: f64,
    capacity: u32,
}

impl Road {
    /// Creates a road record. Prefer building whole networks through
    /// [`NetworkTopologyBuilder`].
    pub fn new(
        name: impl Into<String>,
        source: Option<(IntersectionId, OutgoingId)>,
        dest: Option<(IntersectionId, IncomingId)>,
        length_m: f64,
        capacity: u32,
    ) -> Self {
        Road {
            name: name.into(),
            source,
            dest,
            length_m,
            capacity,
        }
    }

    /// Human-readable name (e.g. `"I0:east->I1:west"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The intersection arm feeding this road, or `None` for entry roads.
    pub fn source(&self) -> Option<(IntersectionId, OutgoingId)> {
        self.source
    }

    /// The intersection arm this road feeds, or `None` for exit roads.
    pub fn dest(&self) -> Option<(IntersectionId, IncomingId)> {
        self.dest
    }

    /// Road length in meters.
    pub fn length_m(&self) -> f64 {
        self.length_m
    }

    /// Storage capacity `W` in vehicles.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Whether this is a boundary entry road (vehicles appear here).
    pub fn is_entry(&self) -> bool {
        self.source.is_none()
    }

    /// Whether this is a boundary exit road (vehicles leave the network at
    /// its far end).
    pub fn is_exit(&self) -> bool {
        self.dest.is_none()
    }

    /// Whether this road connects two intersections.
    pub fn is_internal(&self) -> bool {
        self.source.is_some() && self.dest.is_some()
    }
}

/// One intersection instance: a junction layout plus the roads wired to its
/// arms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntersectionNode {
    name: String,
    layout: IntersectionLayout,
    /// Road feeding each incoming arm, indexed by `IncomingId`.
    incoming_roads: Vec<RoadId>,
    /// Road fed by each outgoing arm, indexed by `OutgoingId`.
    outgoing_roads: Vec<RoadId>,
}

impl IntersectionNode {
    /// Human-readable name (e.g. `"I(0,2)"` for grid networks).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The junction layout.
    pub fn layout(&self) -> &IntersectionLayout {
        &self.layout
    }

    /// The road feeding incoming arm `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the layout.
    pub fn incoming_road(&self, id: IncomingId) -> RoadId {
        self.incoming_roads[id.index()]
    }

    /// The road fed by outgoing arm `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the layout.
    pub fn outgoing_road(&self, id: OutgoingId) -> RoadId {
        self.outgoing_roads[id.index()]
    }

    /// All roads feeding this intersection, indexed by `IncomingId`.
    pub fn incoming_roads(&self) -> &[RoadId] {
        &self.incoming_roads
    }

    /// All roads fed by this intersection, indexed by `OutgoingId`.
    pub fn outgoing_roads(&self) -> &[RoadId] {
        &self.outgoing_roads
    }
}

/// Errors produced while assembling a [`NetworkTopology`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An intersection arm count does not match its layout.
    ArmCountMismatch {
        /// The offending intersection.
        intersection: IntersectionId,
        /// What the layout requires: `(incoming, outgoing)`.
        expected: (usize, usize),
        /// What was wired: `(incoming, outgoing)`.
        got: (usize, usize),
    },
    /// A road id referenced by an intersection does not exist.
    UnknownRoad(RoadId),
    /// A road's endpoint does not agree with the intersection that
    /// references it.
    InconsistentWiring(RoadId),
    /// A road is referenced by more than one arm.
    RoadReused(RoadId),
    /// A road's capacity disagrees with the outgoing-arm capacity declared
    /// in the source intersection's layout (the controller's capacity view
    /// must match the physical road).
    CapacityMismatch {
        /// The offending road.
        road: RoadId,
        /// Capacity in the source intersection's layout.
        layout_capacity: u32,
        /// Capacity on the road record.
        road_capacity: u32,
    },
    /// A road has a non-positive length.
    InvalidLength(RoadId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ArmCountMismatch {
                intersection,
                expected,
                got,
            } => write!(
                f,
                "intersection {intersection} wires {}/{} arms but its layout needs {}/{}",
                got.0, got.1, expected.0, expected.1
            ),
            TopologyError::UnknownRoad(r) => write!(f, "reference to unknown road {r}"),
            TopologyError::InconsistentWiring(r) => {
                write!(
                    f,
                    "road {r} endpoints disagree with the arm that references it"
                )
            }
            TopologyError::RoadReused(r) => write!(f, "road {r} is wired to more than one arm"),
            TopologyError::CapacityMismatch {
                road,
                layout_capacity,
                road_capacity,
            } => write!(
                f,
                "road {road} has capacity {road_capacity} but the source layout declares \
                 {layout_capacity}"
            ),
            TopologyError::InvalidLength(r) => write!(f, "road {r} has non-positive length"),
        }
    }
}

impl Error for TopologyError {}

/// A validated network of signalized intersections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTopology {
    intersections: Vec<IntersectionNode>,
    roads: Vec<Road>,
}

impl NetworkTopology {
    /// Starts building a topology.
    pub fn builder() -> NetworkTopologyBuilder {
        NetworkTopologyBuilder::default()
    }

    /// Number of intersections.
    pub fn num_intersections(&self) -> usize {
        self.intersections.len()
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.roads.len()
    }

    /// The intersection table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn intersection(&self, id: IntersectionId) -> &IntersectionNode {
        &self.intersections[id.index()]
    }

    /// The road table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn road(&self, id: RoadId) -> &Road {
        &self.roads[id.index()]
    }

    /// Iterates over intersection ids in table order.
    pub fn intersection_ids(&self) -> impl Iterator<Item = IntersectionId> + '_ {
        (0..self.intersections.len()).map(|i| IntersectionId::new(i as u32))
    }

    /// Iterates over road ids in table order.
    pub fn road_ids(&self) -> impl Iterator<Item = RoadId> + '_ {
        (0..self.roads.len()).map(|i| RoadId::new(i as u32))
    }

    /// All boundary entry roads.
    pub fn entry_roads(&self) -> Vec<RoadId> {
        self.road_ids()
            .filter(|&r| self.road(r).is_entry())
            .collect()
    }

    /// All boundary exit roads.
    pub fn exit_roads(&self) -> Vec<RoadId> {
        self.road_ids()
            .filter(|&r| self.road(r).is_exit())
            .collect()
    }
}

/// Incremental builder for [`NetworkTopology`].
#[derive(Debug, Clone, Default)]
pub struct NetworkTopologyBuilder {
    intersections: Vec<IntersectionNode>,
    roads: Vec<Road>,
}

impl NetworkTopologyBuilder {
    /// Adds an intersection with its arm wiring and returns its id.
    ///
    /// `incoming_roads[i]` is the road feeding incoming arm `i`;
    /// `outgoing_roads[o]` the road fed by outgoing arm `o`.
    pub fn add_intersection(
        &mut self,
        name: impl Into<String>,
        layout: IntersectionLayout,
        incoming_roads: Vec<RoadId>,
        outgoing_roads: Vec<RoadId>,
    ) -> IntersectionId {
        let id = IntersectionId::new(self.intersections.len() as u32);
        self.intersections.push(IntersectionNode {
            name: name.into(),
            layout,
            incoming_roads,
            outgoing_roads,
        });
        id
    }

    /// Adds a road and returns its id.
    pub fn add_road(&mut self, road: Road) -> RoadId {
        let id = RoadId::new(self.roads.len() as u32);
        self.roads.push(road);
        id
    }

    /// Number of roads added so far (the next road id).
    pub fn next_road_id(&self) -> RoadId {
        RoadId::new(self.roads.len() as u32)
    }

    /// Validates cross-references and produces the topology.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] describing the first inconsistency found;
    /// see the error variants for the individual conditions.
    pub fn build(self) -> Result<NetworkTopology, TopologyError> {
        let num_roads = self.roads.len();
        let mut in_use = vec![false; num_roads];
        let mut out_use = vec![false; num_roads];

        for (r_idx, road) in self.roads.iter().enumerate() {
            let rid = RoadId::new(r_idx as u32);
            if !(road.length_m.is_finite() && road.length_m > 0.0) {
                return Err(TopologyError::InvalidLength(rid));
            }
        }

        for (idx, node) in self.intersections.iter().enumerate() {
            let iid = IntersectionId::new(idx as u32);
            let expected = (node.layout.num_incoming(), node.layout.num_outgoing());
            let got = (node.incoming_roads.len(), node.outgoing_roads.len());
            if expected != got {
                return Err(TopologyError::ArmCountMismatch {
                    intersection: iid,
                    expected,
                    got,
                });
            }
            for (arm, &rid) in node.incoming_roads.iter().enumerate() {
                if rid.index() >= num_roads {
                    return Err(TopologyError::UnknownRoad(rid));
                }
                if in_use[rid.index()] {
                    return Err(TopologyError::RoadReused(rid));
                }
                in_use[rid.index()] = true;
                let road = &self.roads[rid.index()];
                if road.dest != Some((iid, IncomingId::new(arm as u8))) {
                    return Err(TopologyError::InconsistentWiring(rid));
                }
            }
            for (arm, &rid) in node.outgoing_roads.iter().enumerate() {
                if rid.index() >= num_roads {
                    return Err(TopologyError::UnknownRoad(rid));
                }
                if out_use[rid.index()] {
                    return Err(TopologyError::RoadReused(rid));
                }
                out_use[rid.index()] = true;
                let out_id = OutgoingId::new(arm as u8);
                let road = &self.roads[rid.index()];
                if road.source != Some((iid, out_id)) {
                    return Err(TopologyError::InconsistentWiring(rid));
                }
                let layout_capacity = node.layout.capacity(out_id);
                if layout_capacity != road.capacity {
                    return Err(TopologyError::CapacityMismatch {
                        road: rid,
                        layout_capacity,
                        road_capacity: road.capacity,
                    });
                }
            }
        }

        // Every road endpoint that claims an intersection must be wired
        // back from that intersection (checked above by equality), and
        // roads claiming endpoints must actually be referenced.
        for (r_idx, road) in self.roads.iter().enumerate() {
            let rid = RoadId::new(r_idx as u32);
            if road.dest.is_some() && !in_use[r_idx] {
                return Err(TopologyError::InconsistentWiring(rid));
            }
            if road.source.is_some() && !out_use[r_idx] {
                return Err(TopologyError::InconsistentWiring(rid));
            }
        }

        Ok(NetworkTopology {
            intersections: self.intersections,
            roads: self.roads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard;

    /// A single four-way intersection with 4 entry and 4 exit roads.
    fn single() -> NetworkTopology {
        let layout = standard::four_way(120, 1.0);
        let mut b = NetworkTopology::builder();
        let iid = IntersectionId::new(0);
        let mut incoming = Vec::new();
        let mut outgoing = Vec::new();
        for arm in 0..4u8 {
            incoming.push(b.add_road(Road::new(
                format!("entry{arm}"),
                None,
                Some((iid, IncomingId::new(arm))),
                300.0,
                120,
            )));
        }
        for arm in 0..4u8 {
            outgoing.push(b.add_road(Road::new(
                format!("exit{arm}"),
                Some((iid, OutgoingId::new(arm))),
                None,
                300.0,
                120,
            )));
        }
        b.add_intersection("I0", layout, incoming, outgoing);
        b.build().expect("single intersection is valid")
    }

    #[test]
    fn single_intersection_wires_up() {
        let net = single();
        assert_eq!(net.num_intersections(), 1);
        assert_eq!(net.num_roads(), 8);
        assert_eq!(net.entry_roads().len(), 4);
        assert_eq!(net.exit_roads().len(), 4);
        let node = net.intersection(IntersectionId::new(0));
        assert_eq!(node.incoming_roads().len(), 4);
        assert_eq!(node.outgoing_roads().len(), 4);
        assert_eq!(node.name(), "I0");
        let r = net.road(node.incoming_road(IncomingId::new(2)));
        assert!(r.is_entry());
        assert!(!r.is_internal());
        assert_eq!(r.dest(), Some((IntersectionId::new(0), IncomingId::new(2))));
    }

    #[test]
    fn rejects_arm_count_mismatch() {
        let layout = standard::four_way(120, 1.0);
        let mut b = NetworkTopology::builder();
        b.add_intersection("I0", layout, vec![], vec![]);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::ArmCountMismatch { .. }
        ));
    }

    #[test]
    fn rejects_capacity_mismatch() {
        let layout = standard::four_way(120, 1.0);
        let mut b = NetworkTopology::builder();
        let iid = IntersectionId::new(0);
        let mut incoming = Vec::new();
        let mut outgoing = Vec::new();
        for arm in 0..4u8 {
            incoming.push(b.add_road(Road::new(
                format!("entry{arm}"),
                None,
                Some((iid, IncomingId::new(arm))),
                300.0,
                120,
            )));
        }
        for arm in 0..4u8 {
            // Wrong capacity: layout says 120.
            outgoing.push(b.add_road(Road::new(
                format!("exit{arm}"),
                Some((iid, OutgoingId::new(arm))),
                None,
                300.0,
                60,
            )));
        }
        b.add_intersection("I0", layout, incoming, outgoing);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::CapacityMismatch { .. }
        ));
    }

    #[test]
    fn rejects_reused_and_misdirected_roads() {
        let layout = standard::four_way(120, 1.0);
        let mut b = NetworkTopology::builder();
        let iid = IntersectionId::new(0);
        let shared = b.add_road(Road::new(
            "shared",
            None,
            Some((iid, IncomingId::new(0))),
            300.0,
            120,
        ));
        // Reuse the same road for two incoming arms.
        let mut incoming = vec![shared, shared];
        for arm in 2..4u8 {
            incoming.push(b.add_road(Road::new(
                format!("entry{arm}"),
                None,
                Some((iid, IncomingId::new(arm))),
                300.0,
                120,
            )));
        }
        let mut outgoing = Vec::new();
        for arm in 0..4u8 {
            outgoing.push(b.add_road(Road::new(
                format!("exit{arm}"),
                Some((iid, OutgoingId::new(arm))),
                None,
                300.0,
                120,
            )));
        }
        b.add_intersection("I0", layout, incoming, outgoing);
        let err = b.build().unwrap_err();
        assert!(
            matches!(
                err,
                TopologyError::RoadReused(_) | TopologyError::InconsistentWiring(_)
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_invalid_length() {
        let mut b = NetworkTopology::builder();
        b.add_road(Road::new("bad", None, None, 0.0, 120));
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::InvalidLength(_)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = TopologyError::CapacityMismatch {
            road: RoadId::new(3),
            layout_capacity: 120,
            road_capacity: 60,
        };
        let msg = err.to_string();
        assert!(msg.contains("R3"));
        assert!(msg.contains("120"));
        assert!(msg.contains("60"));
    }
}
