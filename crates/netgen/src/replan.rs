//! En-route replanning: rewriting a vehicle's remaining route around
//! closed roads.
//!
//! A [`Replanner`] is built per closure event over the current closure
//! mask. For each vehicle it is shown (via the substrate layer's
//! route-cursor walk), it derives the road sequence of the remaining
//! journey, checks whether any road *after the committed prefix* is
//! closed, and — if so — enumerates open detours from the first
//! uncommitted road with [`enumerate_routes`] and splices the
//! best-weighted one onto the preserved prefix. Everything is
//! deterministic: enumeration order is fixed by the topology, the best
//! option wins by weight with ties broken by enumeration order, and no
//! randomness is drawn — so replanning cannot perturb the simulators'
//! RNG streams, and Serial/Rayon runs stay bit-identical.

use std::collections::HashMap;
use std::sync::Arc;

use utilbp_core::LinkId;

use crate::network::enumerate_routes;
use crate::patterns::TurningProbabilities;
use crate::route::Route;
use crate::topology::{IntersectionId, NetworkTopology, RoadId};

/// Default bound on non-straight movements in a detour suffix: rejoining
/// a grid route around one closed segment takes up to four turns
/// (off, around, back, re-align); three covers every detour that does
/// not re-cross the closure's row/column twice.
const DEFAULT_MAX_TURNS: usize = 3;

/// Hard cap on detour enumeration depth, independent of network size
/// (bounded-turn enumeration is exponential in the turn budget only, but
/// depth still multiplies the walk).
const MAX_HOPS_CAP: usize = 32;

/// A cached detour from one anchor road: the hops to splice and the
/// roads they traverse (anchor first).
type SuffixPlan = (Vec<(IntersectionId, LinkId)>, Vec<RoadId>);

/// Deterministic route-suffix planner for one closure event.
///
/// # Examples
///
/// ```
/// use utilbp_netgen::{GridNetwork, GridSpec, Network, Pattern, Replanner, TurningProbabilities};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let net = Network::from_grid(&grid, Pattern::II);
/// let closed_road = net
///     .topology()
///     .road_ids()
///     .find(|&r| net.topology().road(r).is_internal())
///     .unwrap();
/// let mut closed = vec![false; net.topology().num_roads()];
/// closed[closed_road.index()] = true;
/// let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &closed);
///
/// // A route that enters the closed road beyond its committed first hop
/// // gets rewritten around it…
/// let through = (0..net.num_entries())
///     .flat_map(|e| net.route_options(e))
///     .find(|o| o.roads[2..].contains(&closed_road))
///     .expect("some option crosses the closed road late enough to divert");
/// let diverted = planner.replan(&through.route, 1).expect("an open detour exists");
/// assert_eq!(diverted.hops()[0], through.route.hops()[0], "committed hop preserved");
///
/// // …while a route that avoids it is left alone.
/// let clear = net
///     .route_options(0)
///     .iter()
///     .find(|o| !o.roads.contains(&closed_road))
///     .unwrap();
/// assert!(planner.replan(&clear.route, 1).is_none());
/// ```
pub struct Replanner<'a> {
    topology: &'a NetworkTopology,
    turning: &'a TurningProbabilities,
    closed: &'a [bool],
    max_turns: usize,
    max_hops: usize,
    /// Best open suffix per anchor road (`None` = no open detour exists),
    /// so N stranded vehicles behind the same junction cost one
    /// enumeration, not N.
    cache: HashMap<usize, Option<SuffixPlan>>,
    /// Roads introduced by rewritten suffixes that the original routes
    /// did not traverse, in first-seen order (deduplicated).
    detours: Vec<RoadId>,
    diverted: u64,
}

impl<'a> Replanner<'a> {
    /// A planner over `topology` with `closed` as the per-road closure
    /// mask (indexed by `RoadId`) and `turning` weighting the detour
    /// choice, using the default turn/depth budget.
    ///
    /// # Panics
    ///
    /// Panics if `closed` is not sized to the topology's road count.
    pub fn new(
        topology: &'a NetworkTopology,
        turning: &'a TurningProbabilities,
        closed: &'a [bool],
    ) -> Self {
        assert_eq!(
            closed.len(),
            topology.num_roads(),
            "closure mask must cover every road"
        );
        Replanner {
            topology,
            turning,
            closed,
            max_turns: DEFAULT_MAX_TURNS,
            max_hops: (topology.num_intersections() + 4).min(MAX_HOPS_CAP),
            cache: HashMap::new(),
            detours: Vec::new(),
            diverted: 0,
        }
    }

    /// Vehicles diverted so far.
    pub fn diverted(&self) -> u64 {
        self.diverted
    }

    /// Roads that rewritten routes traverse which their originals did
    /// not — the detour set, in first-seen order.
    pub fn detour_roads(&self) -> &[RoadId] {
        &self.detours
    }

    /// The outgoing road a crossing lands on.
    fn out_road(&self, intersection: IntersectionId, link: LinkId) -> RoadId {
        let node = self.topology.intersection(intersection);
        node.outgoing_road(node.layout().link(link).to())
    }

    /// Proposes a replacement for `route` whose first `fixed_hops` hops
    /// are committed (the vehicle's lane, queue, or crossing is already
    /// bound to them; `0` for a vehicle still outside the network).
    ///
    /// Returns `None` when the remaining journey never enters a closed
    /// road, when the cursor is already past every junction, or when no
    /// open detour exists within the turn/depth budget — in all three
    /// cases the vehicle keeps its route.
    pub fn replan(&mut self, route: &Route, fixed_hops: usize) -> Option<Arc<Route>> {
        let hops = route.hops();
        if fixed_hops >= hops.len() {
            // Only the final exit road remains, and exits cannot close.
            return None;
        }
        // Roads entered strictly after the anchor: the landing road of
        // every uncommitted hop. If none of them is closed, the journey
        // is unaffected.
        let threatened = hops[fixed_hops..]
            .iter()
            .any(|&(i, l)| self.closed[self.out_road(i, l).index()]);
        if !threatened {
            return None;
        }
        // The anchor: the first road the vehicle is not yet committed
        // beyond — its entry road if nothing is committed, otherwise the
        // landing road of the last committed hop.
        let anchor = if fixed_hops == 0 {
            route.entry()
        } else {
            let (i, l) = hops[fixed_hops - 1];
            self.out_road(i, l)
        };
        if !self.cache.contains_key(&anchor.index()) {
            let plan = best_open_suffix(
                self.topology,
                anchor,
                self.turning,
                self.closed,
                self.max_turns,
                self.max_hops,
            );
            self.cache.insert(anchor.index(), plan);
        }
        let (suffix, suffix_roads) = self.cache.get(&anchor.index()).unwrap().as_ref()?;

        // Record which roads the detour adds relative to the old journey.
        let old_roads: Vec<RoadId> = std::iter::once(route.entry())
            .chain(hops.iter().map(|&(i, l)| self.out_road(i, l)))
            .collect();
        let fresh: Vec<RoadId> = suffix_roads
            .iter()
            .skip(1) // the anchor itself is shared
            .filter(|r| !old_roads.contains(r))
            .copied()
            .collect();
        let mut new_hops = hops[..fixed_hops].to_vec();
        new_hops.extend_from_slice(suffix);
        for r in fresh {
            if !self.detours.contains(&r) {
                self.detours.push(r);
            }
        }
        self.diverted += 1;
        Some(Arc::new(Route::new(route.entry(), new_hops)))
    }
}

/// The best fully-open journey continuing from `anchor` under the
/// closure mask: highest weight wins, ties keep enumeration order.
fn best_open_suffix(
    topology: &NetworkTopology,
    anchor: RoadId,
    turning: &TurningProbabilities,
    closed: &[bool],
    max_turns: usize,
    max_hops: usize,
) -> Option<SuffixPlan> {
    let options = enumerate_routes(topology, anchor, turning, max_turns, max_hops);
    let mut best: Option<&crate::network::RouteOption> = None;
    for opt in &options {
        // `roads[0]` is the anchor itself: the vehicle is already bound
        // to it, so its closure state cannot be helped here.
        if opt.roads[1..].iter().any(|r| closed[r.index()]) {
            continue;
        }
        match best {
            Some(b) if opt.weight <= b.weight => {}
            _ => best = Some(opt),
        }
    }
    best.map(|opt| (opt.route.hops().to_vec(), opt.roads.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridNetwork, GridSpec};
    use crate::network::Network;
    use crate::patterns::Pattern;

    fn setup() -> (Network, RoadId, Vec<bool>) {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let closed_road = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_internal())
            .unwrap();
        let mut mask = vec![false; net.topology().num_roads()];
        mask[closed_road.index()] = true;
        (net, closed_road, mask)
    }

    /// The roads a route traverses, entry first.
    fn roads_of(topology: &NetworkTopology, route: &Route) -> Vec<RoadId> {
        std::iter::once(route.entry())
            .chain(route.hops().iter().map(|&(i, l)| {
                let node = topology.intersection(i);
                node.outgoing_road(node.layout().link(l).to())
            }))
            .collect()
    }

    #[test]
    fn rewrites_avoid_the_closure_and_preserve_the_prefix() {
        let (net, closed_road, mask) = setup();
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let mut rewrote = 0;
        for entry in 0..net.num_entries() {
            for opt in net.route_options(entry) {
                let hits = opt.roads.contains(&closed_road);
                for fixed in 0..=opt.route.len() {
                    let result = planner.replan(&opt.route, fixed);
                    let remaining_hit =
                        opt.roads[(fixed + 1).min(opt.roads.len())..].contains(&closed_road);
                    if !remaining_hit {
                        assert!(result.is_none(), "untouched journeys keep their route");
                        continue;
                    }
                    let new = result.expect("the paper grid always has an open detour");
                    rewrote += 1;
                    assert_eq!(
                        &new.hops()[..fixed],
                        &opt.route.hops()[..fixed],
                        "committed prefix must be preserved"
                    );
                    assert_eq!(new.entry(), opt.route.entry());
                    let new_roads = roads_of(net.topology(), &new);
                    assert!(
                        !new_roads[fixed + 1..].contains(&closed_road),
                        "the rewritten journey must avoid the closed road"
                    );
                    // The route must still end at a boundary exit.
                    assert!(net.topology().road(*new_roads.last().unwrap()).is_exit());
                }
                let _ = hits;
            }
        }
        assert!(rewrote > 0, "the option set crosses the closed road");
        assert_eq!(planner.diverted(), rewrote);
        assert!(!planner.detour_roads().is_empty());
    }

    #[test]
    fn replanning_is_deterministic() {
        let (net, _, mask) = setup();
        let run = || {
            let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
            let mut digest: Vec<Option<Vec<(IntersectionId, LinkId)>>> = Vec::new();
            for entry in 0..net.num_entries() {
                for opt in net.route_options(entry) {
                    digest.push(planner.replan(&opt.route, 1).map(|r| r.hops().to_vec()));
                }
            }
            (digest, planner.detour_roads().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fully_blocked_detours_leave_the_route_alone() {
        // Close every road except the boundary entries: no suffix from
        // any anchor can reach an (open) exit, so nothing is rewritten.
        // (Scenario validation forbids closing exits, but the planner
        // must stay correct for any mask it is handed.)
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let mut mask = vec![false; net.topology().num_roads()];
        for r in net.topology().road_ids() {
            if !net.topology().road(r).is_entry() {
                mask[r.index()] = true;
            }
        }
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let long = net
            .route_options(0)
            .iter()
            .max_by_key(|o| o.route.len())
            .unwrap();
        assert!(
            planner.replan(&long.route, 1).is_none(),
            "no open detour exists, the vehicle keeps its route"
        );
        assert_eq!(planner.diverted(), 0);
    }

    #[test]
    fn cursor_past_all_junctions_is_untouched() {
        let (net, _, mask) = setup();
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let opt = &net.route_options(0)[0];
        assert!(planner.replan(&opt.route, opt.route.len()).is_none());
        assert!(planner.replan(&opt.route, opt.route.len() + 1).is_none());
    }
}
