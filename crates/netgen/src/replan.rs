//! En-route replanning: rewriting a vehicle's remaining route in
//! response to the live state of the network.
//!
//! A [`Replanner`] is built per routing-response pass (a closure event, a
//! reopening, or a periodic congestion check) over the current closure
//! mask — and, optionally, a per-road weight view of the live network
//! ([`Replanner::with_road_weights`]). For each vehicle it is shown (via
//! the substrate layer's route-cursor walk), it derives the road sequence
//! of the remaining journey and proposes a rewrite of the uncommitted
//! suffix:
//!
//! - [`replan`](Replanner::replan) diverts journeys that would enter a
//!   *closed* road, splicing the best-weighted open detour (enumerated
//!   with [`enumerate_routes`] from the first uncommitted road) onto the
//!   preserved prefix.
//! - [`replan_congested`](Replanner::replan_congested) diverts journeys
//!   that would enter a *congested* road (a caller-supplied mask), with
//!   candidates scored through the road-weight view so the detour choice
//!   prefers emptier roads; candidates crossing a congested or closed
//!   road are never chosen, so a rerouted journey cannot be re-triggered
//!   while the congested set is unchanged.
//! - [`restore`](Replanner::restore) rewrites a previously diverted
//!   journey back when a *strictly* better open continuation exists (a
//!   reopened road un-dominates the original route) — the reopening
//!   counterpart of `replan`.
//!
//! Everything is deterministic: enumeration order is fixed by the
//! topology, the best option wins by (weighted) score with ties broken by
//! enumeration order, and no randomness is drawn — so replanning cannot
//! perturb the simulators' RNG streams, and Serial/Rayon runs stay
//! bit-identical.

use std::collections::HashMap;
use std::sync::Arc;

use utilbp_core::standard::{self, Turn};
use utilbp_core::LinkId;
use utilbp_metrics::VehicleId;

use crate::network::enumerate_routes;
use crate::patterns::TurningProbabilities;
use crate::route::Route;
use crate::topology::{IntersectionId, NetworkTopology, RoadId};

/// The route-rewrite callback the substrate layer's route-cursor walk
/// hands each vehicle to: `(vehicle id, current route, committed leading
/// hops) -> optional replacement route`. A replacement must preserve
/// exactly the committed prefix and keep the same entry road.
pub type RouteRewrite<'a> = dyn FnMut(VehicleId, &Route, usize) -> Option<Arc<Route>> + 'a;

/// Default bound on non-straight movements in a detour suffix: rejoining
/// a grid route around one closed segment takes up to four turns
/// (off, around, back, re-align); three covers every detour that does
/// not re-cross the closure's row/column twice.
const DEFAULT_MAX_TURNS: usize = 3;

/// Hard cap on detour enumeration depth, independent of network size
/// (bounded-turn enumeration is exponential in the turn budget only, but
/// depth still multiplies the walk).
const MAX_HOPS_CAP: usize = 32;

/// A cached detour from one anchor road: the hops to splice, the roads
/// they traverse (anchor first), and the suffix's selection score (the
/// turning-model weight, multiplied through the road-weight view when one
/// is installed).
type SuffixPlan = (Vec<(IntersectionId, LinkId)>, Vec<RoadId>, f64);

/// Deterministic route-suffix planner for one closure event.
///
/// # Examples
///
/// ```
/// use utilbp_netgen::{GridNetwork, GridSpec, Network, Pattern, Replanner, TurningProbabilities};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let net = Network::from_grid(&grid, Pattern::II);
/// let closed_road = net
///     .topology()
///     .road_ids()
///     .find(|&r| net.topology().road(r).is_internal())
///     .unwrap();
/// let mut closed = vec![false; net.topology().num_roads()];
/// closed[closed_road.index()] = true;
/// let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &closed);
///
/// // A route that enters the closed road beyond its committed first hop
/// // gets rewritten around it…
/// let through = (0..net.num_entries())
///     .flat_map(|e| net.route_options(e))
///     .find(|o| o.roads[2..].contains(&closed_road))
///     .expect("some option crosses the closed road late enough to divert");
/// let diverted = planner.replan(&through.route, 1).expect("an open detour exists");
/// assert_eq!(diverted.hops()[0], through.route.hops()[0], "committed hop preserved");
///
/// // …while a route that avoids it is left alone.
/// let clear = net
///     .route_options(0)
///     .iter()
///     .find(|o| !o.roads.contains(&closed_road))
///     .unwrap();
/// assert!(planner.replan(&clear.route, 1).is_none());
/// ```
pub struct Replanner<'a> {
    topology: &'a NetworkTopology,
    turning: &'a TurningProbabilities,
    closed: &'a [bool],
    /// Optional per-road multiplicative weight view (a congestion-derived
    /// cost surface): a candidate suffix's score is its turning-model
    /// weight times the product of the weights of the roads it enters. A
    /// zero weight excludes the road from every candidate. `None` means
    /// every road weighs 1.
    road_weights: Option<&'a [f64]>,
    max_turns: usize,
    max_hops: usize,
    /// Best open suffix per anchor road (`None` = no open detour exists),
    /// so N stranded vehicles behind the same junction cost one
    /// enumeration, not N.
    cache: HashMap<usize, Option<SuffixPlan>>,
    /// Roads introduced by rewritten suffixes that the original routes
    /// did not traverse, in first-seen order (deduplicated).
    detours: Vec<RoadId>,
    diverted: u64,
    restored: u64,
}

impl<'a> Replanner<'a> {
    /// A planner over `topology` with `closed` as the per-road closure
    /// mask (indexed by `RoadId`) and `turning` weighting the detour
    /// choice, using the default turn/depth budget.
    ///
    /// # Panics
    ///
    /// Panics if `closed` is not sized to the topology's road count.
    pub fn new(
        topology: &'a NetworkTopology,
        turning: &'a TurningProbabilities,
        closed: &'a [bool],
    ) -> Self {
        assert_eq!(
            closed.len(),
            topology.num_roads(),
            "closure mask must cover every road"
        );
        Replanner {
            topology,
            turning,
            closed,
            road_weights: None,
            max_turns: DEFAULT_MAX_TURNS,
            max_hops: (topology.num_intersections() + 4).min(MAX_HOPS_CAP),
            cache: HashMap::new(),
            detours: Vec::new(),
            diverted: 0,
            restored: 0,
        }
    }

    /// A planner whose candidate scoring sees the network through
    /// `weights` — a per-road multiplier over the turning-model weight
    /// (e.g. a congestion-derived cost surface where emptier roads weigh
    /// more and saturated roads weigh zero). Used by the congestion
    /// policy; [`restore`](Self::restore) expects a weight-free planner
    /// (its dominance comparison is against the turning model alone).
    ///
    /// # Panics
    ///
    /// Panics if either slice is not sized to the topology's road count,
    /// or a weight is negative or non-finite.
    pub fn with_road_weights(
        topology: &'a NetworkTopology,
        turning: &'a TurningProbabilities,
        closed: &'a [bool],
        weights: &'a [f64],
    ) -> Self {
        assert_eq!(
            weights.len(),
            topology.num_roads(),
            "road-weight view must cover every road"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "road weights must be finite and non-negative"
        );
        let mut planner = Replanner::new(topology, turning, closed);
        planner.road_weights = Some(weights);
        planner
    }

    /// Vehicles diverted so far (closure *and* congestion diversions).
    pub fn diverted(&self) -> u64 {
        self.diverted
    }

    /// Vehicles restored to a strictly better route so far.
    pub fn restored(&self) -> u64 {
        self.restored
    }

    /// Roads that rewritten routes traverse which their originals did
    /// not — the detour set, in first-seen order.
    pub fn detour_roads(&self) -> &[RoadId] {
        &self.detours
    }

    /// The outgoing road a crossing lands on.
    fn out_road(&self, intersection: IntersectionId, link: LinkId) -> RoadId {
        let node = self.topology.intersection(intersection);
        node.outgoing_road(node.layout().link(link).to())
    }

    /// The first road `route` is not committed beyond: the entry road if
    /// nothing is committed, otherwise the landing road of the last
    /// committed hop.
    fn anchor_of(&self, route: &Route, fixed_hops: usize) -> RoadId {
        if fixed_hops == 0 {
            route.entry()
        } else {
            let (i, l) = route.hops()[fixed_hops - 1];
            self.out_road(i, l)
        }
    }

    /// The cached best continuation from `anchor` (computing and caching
    /// it on first use), or `None` when no admissible suffix exists.
    fn cached_suffix(&mut self, anchor: RoadId) -> Option<&SuffixPlan> {
        if !self.cache.contains_key(&anchor.index()) {
            let plan = best_open_suffix(
                self.topology,
                anchor,
                self.turning,
                self.closed,
                self.road_weights,
                self.max_turns,
                self.max_hops,
            );
            self.cache.insert(anchor.index(), plan);
        }
        self.cache.get(&anchor.index()).unwrap().as_ref()
    }

    /// The turning-model weight of `route`'s hops from `fixed_hops` on —
    /// the same product [`enumerate_routes`] would assign the suffix, so
    /// the two compare exactly (bit-for-bit, same multiplication order).
    fn suffix_weight(&self, route: &Route, fixed_hops: usize) -> f64 {
        let mut weight = 1.0;
        for &(_, link) in &route.hops()[fixed_hops..] {
            let (approach, turn) =
                standard::movement_of(link).expect("routes use standard four-way links");
            weight *= match turn {
                Turn::Straight => self.turning.straight(approach),
                Turn::Left => self.turning.left(approach),
                Turn::Right => self.turning.right(approach),
            };
        }
        weight
    }

    /// Splices the cached suffix of `anchor` onto `route`'s committed
    /// prefix. With `record_detours`, roads the old journey did not
    /// traverse are recorded into the detour set — diversion passes want
    /// that; restores do not (a restored original route is not a
    /// detour). Must only be called once
    /// [`cached_suffix`](Self::cached_suffix) returned a plan for
    /// `anchor`.
    fn splice(
        &mut self,
        route: &Route,
        fixed_hops: usize,
        anchor: RoadId,
        record_detours: bool,
    ) -> Arc<Route> {
        let hops = route.hops();
        let (suffix, suffix_roads, _) = self.cache[&anchor.index()]
            .as_ref()
            .expect("splice follows a cache hit");
        let old_roads: Vec<RoadId> = std::iter::once(route.entry())
            .chain(hops.iter().map(|&(i, l)| self.out_road(i, l)))
            .collect();
        let fresh: Vec<RoadId> = suffix_roads
            .iter()
            .skip(1) // the anchor itself is shared
            .filter(|r| !old_roads.contains(r))
            .copied()
            .collect();
        let mut new_hops = hops[..fixed_hops].to_vec();
        new_hops.extend_from_slice(suffix);
        if record_detours {
            for r in fresh {
                if !self.detours.contains(&r) {
                    self.detours.push(r);
                }
            }
        }
        Arc::new(Route::new(route.entry(), new_hops))
    }

    /// The shared diversion path: rewrite the uncommitted suffix when it
    /// enters a road flagged by `trigger`, if an admissible continuation
    /// exists.
    fn divert_on(
        &mut self,
        route: &Route,
        fixed_hops: usize,
        trigger: &[bool],
    ) -> Option<Arc<Route>> {
        let hops = route.hops();
        if fixed_hops >= hops.len() {
            // Only the final exit road remains, and exits cannot close.
            return None;
        }
        // Roads entered strictly after the anchor: the landing road of
        // every uncommitted hop. If none of them is flagged, the journey
        // is unaffected.
        let threatened = hops[fixed_hops..]
            .iter()
            .any(|&(i, l)| trigger[self.out_road(i, l).index()]);
        if !threatened {
            return None;
        }
        let anchor = self.anchor_of(route, fixed_hops);
        self.cached_suffix(anchor)?;
        let new_route = self.splice(route, fixed_hops, anchor, true);
        self.diverted += 1;
        Some(new_route)
    }

    /// Proposes a replacement for `route` whose first `fixed_hops` hops
    /// are committed (the vehicle's lane, queue, or crossing is already
    /// bound to them; `0` for a vehicle still outside the network).
    ///
    /// Returns `None` when the remaining journey never enters a closed
    /// road, when the cursor is already past every junction, or when no
    /// open detour exists within the turn/depth budget — in all three
    /// cases the vehicle keeps its route.
    pub fn replan(&mut self, route: &Route, fixed_hops: usize) -> Option<Arc<Route>> {
        self.divert_on(route, fixed_hops, self.closed)
    }

    /// Proposes a congestion diversion: rewrites the uncommitted suffix
    /// when it enters a road flagged in `congested`, choosing the best
    /// continuation under the planner's road-weight view. Candidates that
    /// cross a closed road are never chosen, and — provided the caller's
    /// weight view zeroes every congested road — neither are candidates
    /// through the congestion itself, so a journey rewritten here cannot
    /// trigger again while the congested set is unchanged (no reroute
    /// churn).
    ///
    /// Returns `None` when the remaining journey avoids the congestion,
    /// the cursor is past every junction, or no admissible alternative
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if `congested` is not sized to the topology's road count.
    pub fn replan_congested(
        &mut self,
        route: &Route,
        fixed_hops: usize,
        congested: &[bool],
    ) -> Option<Arc<Route>> {
        assert_eq!(
            congested.len(),
            self.topology.num_roads(),
            "congestion mask must cover every road"
        );
        self.divert_on(route, fixed_hops, congested)
    }

    /// Proposes restoring a previously diverted `route`: rewrites the
    /// uncommitted suffix when the best open continuation from the anchor
    /// is *strictly* better (by turning-model weight) than the journey's
    /// current remaining suffix — the reopening counterpart of
    /// [`replan`](Self::replan). A suffix that still crosses a closed
    /// road counts as weight zero, so any open continuation dominates it.
    ///
    /// Returns `None` when the cursor is past every junction, no open
    /// continuation exists, or the current suffix is already undominated
    /// — the vehicle keeps its (detour) route.
    pub fn restore(&mut self, route: &Route, fixed_hops: usize) -> Option<Arc<Route>> {
        debug_assert!(
            self.road_weights.is_none(),
            "restore compares turning-model weights; a road-weight view would \
             deflate the cached scores and mask dominated detours"
        );
        let hops = route.hops();
        if fixed_hops >= hops.len() {
            return None;
        }
        let anchor = self.anchor_of(route, fixed_hops);
        let best_score = self.cached_suffix(anchor)?.2;
        let current = if hops[fixed_hops..]
            .iter()
            .any(|&(i, l)| self.closed[self.out_road(i, l).index()])
        {
            0.0
        } else {
            self.suffix_weight(route, fixed_hops)
        };
        if best_score <= current {
            return None;
        }
        let new_route = self.splice(route, fixed_hops, anchor, false);
        self.restored += 1;
        Some(new_route)
    }
}

/// The best fully-open journey continuing from `anchor` under the
/// closure mask and the optional road-weight view: highest score wins
/// (turning weight × the product of entered roads' weights), ties keep
/// enumeration order; zero-score candidates are inadmissible.
fn best_open_suffix(
    topology: &NetworkTopology,
    anchor: RoadId,
    turning: &TurningProbabilities,
    closed: &[bool],
    road_weights: Option<&[f64]>,
    max_turns: usize,
    max_hops: usize,
) -> Option<SuffixPlan> {
    let options = enumerate_routes(topology, anchor, turning, max_turns, max_hops);
    let mut best: Option<(f64, &crate::network::RouteOption)> = None;
    for opt in &options {
        // `roads[0]` is the anchor itself: the vehicle is already bound
        // to it, so its closure/congestion state cannot be helped here.
        if opt.roads[1..].iter().any(|r| closed[r.index()]) {
            continue;
        }
        let score = match road_weights {
            None => opt.weight,
            Some(w) => {
                let mut s = opt.weight;
                for r in &opt.roads[1..] {
                    s *= w[r.index()];
                }
                s
            }
        };
        if score <= 0.0 {
            continue;
        }
        match best {
            Some((b, _)) if score <= b => {}
            _ => best = Some((score, opt)),
        }
    }
    best.map(|(score, opt)| (opt.route.hops().to_vec(), opt.roads.clone(), score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridNetwork, GridSpec};
    use crate::network::Network;
    use crate::patterns::Pattern;

    fn setup() -> (Network, RoadId, Vec<bool>) {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let closed_road = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_internal())
            .unwrap();
        let mut mask = vec![false; net.topology().num_roads()];
        mask[closed_road.index()] = true;
        (net, closed_road, mask)
    }

    /// The roads a route traverses, entry first.
    fn roads_of(topology: &NetworkTopology, route: &Route) -> Vec<RoadId> {
        std::iter::once(route.entry())
            .chain(route.hops().iter().map(|&(i, l)| {
                let node = topology.intersection(i);
                node.outgoing_road(node.layout().link(l).to())
            }))
            .collect()
    }

    #[test]
    fn rewrites_avoid_the_closure_and_preserve_the_prefix() {
        let (net, closed_road, mask) = setup();
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let mut rewrote = 0;
        for entry in 0..net.num_entries() {
            for opt in net.route_options(entry) {
                let hits = opt.roads.contains(&closed_road);
                for fixed in 0..=opt.route.len() {
                    let result = planner.replan(&opt.route, fixed);
                    let remaining_hit =
                        opt.roads[(fixed + 1).min(opt.roads.len())..].contains(&closed_road);
                    if !remaining_hit {
                        assert!(result.is_none(), "untouched journeys keep their route");
                        continue;
                    }
                    let new = result.expect("the paper grid always has an open detour");
                    rewrote += 1;
                    assert_eq!(
                        &new.hops()[..fixed],
                        &opt.route.hops()[..fixed],
                        "committed prefix must be preserved"
                    );
                    assert_eq!(new.entry(), opt.route.entry());
                    let new_roads = roads_of(net.topology(), &new);
                    assert!(
                        !new_roads[fixed + 1..].contains(&closed_road),
                        "the rewritten journey must avoid the closed road"
                    );
                    // The route must still end at a boundary exit.
                    assert!(net.topology().road(*new_roads.last().unwrap()).is_exit());
                }
                let _ = hits;
            }
        }
        assert!(rewrote > 0, "the option set crosses the closed road");
        assert_eq!(planner.diverted(), rewrote);
        assert!(!planner.detour_roads().is_empty());
    }

    #[test]
    fn replanning_is_deterministic() {
        let (net, _, mask) = setup();
        let run = || {
            let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
            let mut digest: Vec<Option<Vec<(IntersectionId, LinkId)>>> = Vec::new();
            for entry in 0..net.num_entries() {
                for opt in net.route_options(entry) {
                    digest.push(planner.replan(&opt.route, 1).map(|r| r.hops().to_vec()));
                }
            }
            (digest, planner.detour_roads().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fully_blocked_detours_leave_the_route_alone() {
        // Close every road except the boundary entries: no suffix from
        // any anchor can reach an (open) exit, so nothing is rewritten.
        // (Scenario validation forbids closing exits, but the planner
        // must stay correct for any mask it is handed.)
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let mut mask = vec![false; net.topology().num_roads()];
        for r in net.topology().road_ids() {
            if !net.topology().road(r).is_entry() {
                mask[r.index()] = true;
            }
        }
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let long = net
            .route_options(0)
            .iter()
            .max_by_key(|o| o.route.len())
            .unwrap();
        assert!(
            planner.replan(&long.route, 1).is_none(),
            "no open detour exists, the vehicle keeps its route"
        );
        assert_eq!(planner.diverted(), 0);
    }

    #[test]
    fn cursor_past_all_junctions_is_untouched() {
        let (net, _, mask) = setup();
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let opt = &net.route_options(0)[0];
        assert!(planner.replan(&opt.route, opt.route.len()).is_none());
        assert!(planner.replan(&opt.route, opt.route.len() + 1).is_none());
    }

    /// Mirrors the planner's selection rule: highest weight wins, ties
    /// keep enumeration order.
    fn best_option(options: &[crate::network::RouteOption]) -> &crate::network::RouteOption {
        let mut best: Option<&crate::network::RouteOption> = None;
        for opt in options {
            match best {
                Some(b) if opt.weight <= b.weight => {}
                _ => best = Some(opt),
            }
        }
        best.expect("option set is non-empty")
    }

    #[test]
    fn restore_rewrites_diverted_routes_back_and_is_idempotent() {
        let (net, _, _) = setup();
        let topo = net.topology();
        let budget_hops = (topo.num_intersections() + 4).min(32);
        // Build a journey whose uncommitted suffix (fixed = 1) is exactly
        // the *strictly* best continuation from its anchor, with an
        // internal road on it to close: closing that road forces a
        // strictly worse detour, and reopening must restore the original.
        let mut picked = None;
        'outer: for e in 0..net.num_entries() {
            for o in net.route_options(e) {
                let anchor = o.roads[1];
                if !topo.road(anchor).is_internal() {
                    continue;
                }
                let conts =
                    enumerate_routes(topo, anchor, &TurningProbabilities::PAPER, 3, budget_hops);
                let best = best_option(&conts);
                let Some(&victim) = best.roads[1..]
                    .iter()
                    .find(|r| topo.road(**r).is_internal())
                else {
                    continue;
                };
                // The best continuation must strictly dominate every
                // alternative that avoids the victim road, or restore has
                // nothing strict to prefer.
                let dominated = conts
                    .iter()
                    .filter(|c| !c.roads[1..].contains(&victim))
                    .all(|c| c.weight < best.weight);
                if !dominated {
                    continue;
                }
                let mut hops = vec![o.route.hops()[0]];
                hops.extend_from_slice(best.route.hops());
                picked = Some((Route::new(o.route.entry(), hops), victim));
                break 'outer;
            }
        }
        let (through, victim) = picked.expect("the paper grid offers such a journey");
        let mut mask = vec![false; topo.num_roads()];
        mask[victim.index()] = true;
        // Divert around the closure…
        let diverted = {
            let mut planner = Replanner::new(topo, &TurningProbabilities::PAPER, &mask);
            planner.replan(&through, 1).expect("detour exists")
        };
        assert_ne!(diverted.hops(), through.hops());
        // …then reopen everything: the detour is dominated by the best
        // open continuation and gets rewritten back.
        let open = vec![false; topo.num_roads()];
        let mut planner = Replanner::new(topo, &TurningProbabilities::PAPER, &open);
        let restored = planner
            .restore(&diverted, 1)
            .expect("the open network strictly dominates the detour");
        assert_eq!(planner.restored(), 1);
        assert_eq!(planner.diverted(), 0, "restores are not diversions");
        assert_eq!(
            restored.hops(),
            through.hops(),
            "restore returns the original (best) journey"
        );
        // The restored route is the best open continuation: restoring it
        // again proposes nothing (no oscillation).
        assert!(planner.restore(&restored, 1).is_none());
        assert_eq!(planner.restored(), 1);
    }

    #[test]
    fn restore_treats_still_blocked_suffixes_as_dominated() {
        // A suffix through a still-closed road weighs zero, so any open
        // continuation restores it — even a lower-weight one.
        let (net, closed_road, mask) = setup();
        let through = (0..net.num_entries())
            .flat_map(|e| net.route_options(e))
            .find(|o| o.roads[2..].contains(&closed_road))
            .expect("an option crosses the closed road late enough");
        let mut planner = Replanner::new(net.topology(), &TurningProbabilities::PAPER, &mask);
        let restored = planner
            .restore(&through.route, 1)
            .expect("an open continuation exists");
        let restored_roads = roads_of(net.topology(), &restored);
        assert!(!restored_roads[2..].contains(&closed_road));
        assert_eq!(planner.restored(), 1);
    }

    #[test]
    fn congestion_diversion_avoids_the_congested_road_and_cannot_churn() {
        let (net, hot_road, congested) = setup();
        let open = vec![false; net.topology().num_roads()];
        // The congestion weight view: saturated roads weigh zero (never
        // chosen), everything else weighs one.
        let weights: Vec<f64> = congested
            .iter()
            .map(|&c| if c { 0.0 } else { 1.0 })
            .collect();
        let mut planner = Replanner::with_road_weights(
            net.topology(),
            &TurningProbabilities::PAPER,
            &open,
            &weights,
        );
        let through = (0..net.num_entries())
            .flat_map(|e| net.route_options(e))
            .find(|o| o.roads[2..].contains(&hot_road))
            .expect("an option crosses the congested road late enough");
        let rerouted = planner
            .replan_congested(&through.route, 1, &congested)
            .expect("an uncongested alternative exists");
        assert_eq!(planner.diverted(), 1);
        let new_roads = roads_of(net.topology(), &rerouted);
        assert!(
            !new_roads[2..].contains(&hot_road),
            "the rewritten journey avoids the congestion"
        );
        // The rewrite avoids every congested road, so the same congested
        // set can never trigger it again — no reroute churn.
        assert!(planner.replan_congested(&rerouted, 1, &congested).is_none());
        assert_eq!(planner.diverted(), 1);
        // A journey that never touches the congestion is left alone.
        let clear = net
            .route_options(0)
            .iter()
            .find(|o| !o.roads.contains(&hot_road))
            .unwrap();
        assert!(planner
            .replan_congested(&clear.route, 1, &congested)
            .is_none());
    }

    #[test]
    fn road_weights_steer_the_detour_choice() {
        // With every road weighing 1 the congestion pass picks the same
        // suffix the closure pass would; sinking one detour road's weight
        // steers the choice elsewhere.
        let (net, hot_road, congested) = setup();
        let open = vec![false; net.topology().num_roads()];
        let through = (0..net.num_entries())
            .flat_map(|e| net.route_options(e))
            .find(|o| o.roads[2..].contains(&hot_road))
            .expect("an option crosses the congested road late enough");

        let uniform: Vec<f64> = congested
            .iter()
            .map(|&c| if c { 0.0 } else { 1.0 })
            .collect();
        let baseline = {
            let mut planner = Replanner::with_road_weights(
                net.topology(),
                &TurningProbabilities::PAPER,
                &open,
                &uniform,
            );
            planner
                .replan_congested(&through.route, 1, &congested)
                .expect("alternative exists")
        };
        // Make one road of the baseline detour (one the journey did not
        // already use) nearly free to traverse… in weight terms, nearly
        // worthless — the planner must route around it too.
        let old_roads = roads_of(net.topology(), &through.route);
        let baseline_roads = roads_of(net.topology(), &baseline);
        let steer = baseline_roads[2..]
            .iter()
            .find(|r| !old_roads.contains(r))
            .copied()
            .expect("the detour adds roads");
        let mut skewed = uniform.clone();
        skewed[steer.index()] = 1e-6;
        let mut planner = Replanner::with_road_weights(
            net.topology(),
            &TurningProbabilities::PAPER,
            &open,
            &skewed,
        );
        let steered = planner
            .replan_congested(&through.route, 1, &congested)
            .expect("another alternative exists");
        let steered_roads = roads_of(net.topology(), &steered);
        assert!(
            !steered_roads[2..].contains(&steer),
            "a near-zero weight steers the detour off that road"
        );
    }
}
