//! # utilbp-netgen
//!
//! Network construction and demand generation for the adaptive
//! back-pressure workspace:
//!
//! - [`NetworkTopology`] — validated networks of signalized intersections
//!   wired by directed [`Road`]s;
//! - [`GridNetwork`] / [`GridSpec`] — the paper's 3×3 grid of Fig. 1
//!   four-way junctions (and arbitrary `rows × cols` variants);
//! - [`ArterialSpec`] / [`RingSpec`] / [`AsymmetricGridSpec`] — non-grid
//!   generators (corridors, ring roads, per-axis asymmetric grids) with
//!   per-arm road capacities;
//! - [`Network`] / [`enumerate_routes`] — topology-agnostic routable
//!   networks: any topology of standard four-way junctions plus
//!   pre-enumerated weighted route sets per boundary entry;
//! - [`TurningProbabilities`] (Table I) and [`Pattern`] /
//!   [`DemandSchedule`] (Table II, including the 4 h mixed pattern);
//! - [`Route`] / [`RouteChoice`] — per-vehicle journeys: straight through,
//!   or one turn at a randomly selected intersection;
//! - [`Replanner`] — deterministic en-route replanning: rewrites a
//!   vehicle's remaining route around mid-run road closures by
//!   enumerating open detours from the first uncommitted road;
//! - [`DemandGenerator`] — seeded Poisson arrivals with routed vehicles,
//!   served allocation-free from a per-(entry, choice) route cache.
//!
//! ```
//! use utilbp_core::{Tick, Ticks};
//! use utilbp_netgen::{
//!     DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec,
//!     Pattern,
//! };
//!
//! let grid = GridNetwork::new(GridSpec::paper());
//! let mut demand = DemandGenerator::new(
//!     &grid,
//!     DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(60))),
//!     0xC0FFEE,
//! );
//! let first_minute: usize = (0..60)
//!     .map(|k| demand.poll(&grid, Tick::new(k)).len())
//!     .sum();
//! assert!(first_minute > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demand;
mod generators;
mod grid;
mod network;
mod patterns;
mod replan;
mod route;
mod topology;

pub use demand::{Arrival, DemandConfig, DemandGenerator};
pub use generators::{ArterialSpec, AsymmetricGridSpec, RingSpec};
pub use grid::{EntryPoint, GridNetwork, GridPos, GridSpec, RouteChoice};
pub use network::{enumerate_routes, NetEntry, Network, RouteOption};
pub use patterns::{DemandSchedule, Pattern, TurningProbabilities};
pub use replan::{Replanner, RouteRewrite};
pub use route::Route;
pub use topology::{
    IntersectionId, IntersectionNode, NetworkTopology, NetworkTopologyBuilder, Road, RoadId,
    TopologyError,
};
