//! Rectangular grid networks (the paper's 3×3 experimental network).
//!
//! A [`GridNetwork`] instantiates `rows × cols` copies of the paper's
//! Fig. 1 four-way intersection and wires adjacent intersections with
//! internal roads; every boundary arm gets an entry and an exit road. Grid
//! coordinates are `(row, col)` with row 0 the **northern** row and column
//! 0 the **western** column, so the paper's "top-right" intersection is
//! `(0, cols−1)`.

use serde::{Deserialize, Serialize};
use utilbp_core::standard::{self, Approach};

use crate::route::Route;
use crate::topology::{IntersectionId, NetworkTopology, Road, RoadId};

/// Parameters of a grid network. The defaults reproduce the paper's
/// Section V setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Number of intersection rows (3 in the paper).
    pub rows: u32,
    /// Number of intersection columns (3 in the paper).
    pub cols: u32,
    /// Length of every road in meters. 300 m makes a road's storage match
    /// the paper's `W = 120` at 3 dedicated lanes × 40 vehicles/lane
    /// (5 m vehicle + 2.5 m standstill gap).
    pub road_length_m: f64,
    /// Storage capacity `W` of every road, in vehicles (120 in the paper).
    pub capacity: u32,
    /// Maximum service rate `µ` of every link, vehicles per mini-slot
    /// (1 in the paper).
    pub service_rate: f64,
    /// Free-flow speed in m/s (13.89 m/s = 50 km/h).
    pub free_speed_mps: f64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            rows: 3,
            cols: 3,
            road_length_m: 300.0,
            capacity: 120,
            service_rate: 1.0,
            free_speed_mps: 13.89,
        }
    }
}

impl GridSpec {
    /// The paper's 3×3 network specification.
    pub fn paper() -> Self {
        GridSpec::default()
    }

    /// A `rows × cols` grid with the remaining parameters at their paper
    /// values.
    pub fn with_size(rows: u32, cols: u32) -> Self {
        GridSpec {
            rows,
            cols,
            ..GridSpec::default()
        }
    }
}

/// A grid cell `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GridPos {
    /// Row, 0 = northern row.
    pub row: u32,
    /// Column, 0 = western column.
    pub col: u32,
}

impl GridPos {
    /// Creates a position.
    pub const fn new(row: u32, col: u32) -> Self {
        GridPos { row, col }
    }

    /// The neighboring cell in compass direction `dir`, if inside a
    /// `rows × cols` grid.
    pub fn neighbor(self, dir: Approach, rows: u32, cols: u32) -> Option<GridPos> {
        match dir {
            Approach::North => self.row.checked_sub(1).map(|r| GridPos::new(r, self.col)),
            Approach::South => (self.row + 1 < rows).then(|| GridPos::new(self.row + 1, self.col)),
            Approach::West => self.col.checked_sub(1).map(|c| GridPos::new(self.row, c)),
            Approach::East => (self.col + 1 < cols).then(|| GridPos::new(self.row, self.col + 1)),
        }
    }
}

impl std::fmt::Display for GridPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A boundary entry point: the entry road at one boundary arm, plus where
/// it is (`side` of the network, `slot` along that side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryPoint {
    /// The entry road.
    pub road: RoadId,
    /// The network side vehicles come from (the paper's "entering from
    /// North/East/South/West").
    pub side: Approach,
    /// Index along the side: column for north/south sides, row for
    /// east/west sides.
    pub slot: u32,
    /// The intersection the entry road feeds.
    pub intersection: IntersectionId,
}

/// A grid of four-way intersections with its topology and entry metadata.
///
/// # Examples
///
/// ```
/// use utilbp_netgen::{GridNetwork, GridSpec};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// assert_eq!(grid.topology().num_intersections(), 9);
/// assert_eq!(grid.entries().len(), 12); // 3 per side
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridNetwork {
    spec: GridSpec,
    topology: NetworkTopology,
    /// Intersection id by `row * cols + col`.
    ids: Vec<IntersectionId>,
    entries: Vec<EntryPoint>,
}

impl GridNetwork {
    /// Builds a grid from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.rows == 0 || spec.cols == 0`.
    pub fn new(spec: GridSpec) -> Self {
        assert!(spec.rows > 0 && spec.cols > 0, "grid must be non-empty");
        let rows = spec.rows;
        let cols = spec.cols;
        let layout = standard::four_way(spec.capacity, spec.service_rate);

        let mut builder = NetworkTopology::builder();
        let iid = |pos: GridPos| IntersectionId::new(pos.row * cols + pos.col);

        // First pass: create all roads, remembering per-intersection arms.
        // Internal roads are created once, when scanning their *source*
        // intersection; the incoming slot of the destination is filled from
        // the same id.
        let cells = (rows * cols) as usize;
        let mut incoming: Vec<Vec<Option<RoadId>>> = vec![vec![None; 4]; cells];
        let mut outgoing: Vec<Vec<Option<RoadId>>> = vec![vec![None; 4]; cells];
        let mut entries = Vec::new();

        for row in 0..rows {
            for col in 0..cols {
                let pos = GridPos::new(row, col);
                let here = iid(pos);
                for dir in Approach::ALL {
                    let out_arm = dir.outgoing();
                    if outgoing[here.index()][out_arm.index()].is_none() {
                        match pos.neighbor(dir, rows, cols) {
                            Some(npos) => {
                                // Internal road: leaves `here` toward `dir`,
                                // arrives at the neighbor from the opposite
                                // arm.
                                let there = iid(npos);
                                let in_arm = dir.opposite().incoming();
                                let rid = builder.add_road(Road::new(
                                    format!("I{pos}:{dir}->I{npos}"),
                                    Some((here, out_arm)),
                                    Some((there, in_arm)),
                                    spec.road_length_m,
                                    spec.capacity,
                                ));
                                outgoing[here.index()][out_arm.index()] = Some(rid);
                                incoming[there.index()][in_arm.index()] = Some(rid);
                            }
                            None => {
                                // Boundary: one exit road out, one entry in.
                                let exit = builder.add_road(Road::new(
                                    format!("I{pos}:{dir}->boundary"),
                                    Some((here, out_arm)),
                                    None,
                                    spec.road_length_m,
                                    spec.capacity,
                                ));
                                outgoing[here.index()][out_arm.index()] = Some(exit);
                                let in_arm = dir.incoming();
                                let entry = builder.add_road(Road::new(
                                    format!("boundary:{dir}->I{pos}"),
                                    None,
                                    Some((here, in_arm)),
                                    spec.road_length_m,
                                    spec.capacity,
                                ));
                                incoming[here.index()][in_arm.index()] = Some(entry);
                                let slot = match dir {
                                    Approach::North | Approach::South => col,
                                    Approach::East | Approach::West => row,
                                };
                                entries.push(EntryPoint {
                                    road: entry,
                                    side: dir,
                                    slot,
                                    intersection: here,
                                });
                            }
                        }
                    }
                }
            }
        }

        // Second pass: register intersections with their wiring.
        let mut ids = Vec::with_capacity(cells);
        for row in 0..rows {
            for col in 0..cols {
                let pos = GridPos::new(row, col);
                let cell = (row * cols + col) as usize;
                let inc: Vec<RoadId> = incoming[cell]
                    .iter()
                    .map(|r| r.expect("every arm is wired by the first pass"))
                    .collect();
                let out: Vec<RoadId> = outgoing[cell]
                    .iter()
                    .map(|r| r.expect("every arm is wired by the first pass"))
                    .collect();
                let id = builder.add_intersection(format!("I{pos}"), layout.clone(), inc, out);
                ids.push(id);
            }
        }

        let topology = builder
            .build()
            .expect("grid construction satisfies all topology invariants");
        // Deterministic entry order: by side (N,E,S,W), then slot.
        entries.sort_by_key(|e| (e.side as u8, e.slot));

        GridNetwork {
            spec,
            topology,
            ids,
            entries,
        }
    }

    /// The grid parameters.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The underlying validated topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// The intersection at grid cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the grid.
    pub fn intersection_at(&self, pos: GridPos) -> IntersectionId {
        assert!(
            pos.row < self.spec.rows && pos.col < self.spec.cols,
            "{pos} outside {}x{} grid",
            self.spec.rows,
            self.spec.cols
        );
        self.ids[(pos.row * self.spec.cols + pos.col) as usize]
    }

    /// The paper's "top-right" (north-eastern) intersection.
    pub fn top_right(&self) -> IntersectionId {
        self.intersection_at(GridPos::new(0, self.spec.cols - 1))
    }

    /// All boundary entry points, ordered by side (N, E, S, W) then slot.
    pub fn entries(&self) -> &[EntryPoint] {
        &self.entries
    }

    /// Number of intersections a vehicle entering from `side` crosses if it
    /// drives straight through (the candidates for its turning
    /// intersection).
    pub fn straight_path_len(&self, side: Approach) -> u32 {
        match side {
            Approach::North | Approach::South => self.spec.rows,
            Approach::East | Approach::West => self.spec.cols,
        }
    }

    /// Builds the route of a vehicle entering at `entry` that makes
    /// `choice` (drives straight through, or turns once at the `path_index`-th
    /// intersection along its way — the paper's "the intersection at which a
    /// vehicle takes the turn is selected randomly").
    ///
    /// # Panics
    ///
    /// Panics if `choice` names a `path_index` beyond the straight path
    /// length for this entry's side.
    pub fn route(&self, entry: &EntryPoint, choice: RouteChoice) -> Route {
        let rows = self.spec.rows;
        let cols = self.spec.cols;
        let mut pos = match entry.side {
            Approach::North => GridPos::new(0, entry.slot),
            Approach::South => GridPos::new(rows - 1, entry.slot),
            Approach::East => GridPos::new(entry.slot, cols - 1),
            Approach::West => GridPos::new(entry.slot, 0),
        };
        if let RouteChoice::TurnAt { path_index, .. } = choice {
            assert!(
                path_index < self.straight_path_len(entry.side) as usize,
                "turn index {path_index} beyond straight path"
            );
        }

        let mut approach = entry.side;
        let mut hops = Vec::new();
        let mut step = 0usize;
        loop {
            let turn = match choice {
                RouteChoice::TurnAt { turn, path_index } if path_index == step => turn,
                _ => standard::Turn::Straight,
            };
            let here = self.intersection_at(pos);
            hops.push((here, standard::link_id(approach, turn)));
            let exit_arm = turn.exit_from(approach);
            match pos.neighbor(exit_arm, rows, cols) {
                Some(npos) => {
                    pos = npos;
                    approach = exit_arm.opposite();
                    step += 1;
                }
                None => break,
            }
        }
        Route::new(entry.road, hops)
    }
}

/// How a vehicle traverses the grid (per the paper's demand model: at most
/// one turn per journey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteChoice {
    /// Drive straight through to the opposite boundary.
    Straight,
    /// Turn once at the `path_index`-th intersection along the straight
    /// path (0-based), then drive straight to the boundary.
    TurnAt {
        /// The turn to make.
        turn: standard::Turn,
        /// Which intersection along the straight path to turn at.
        path_index: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::Turn;

    fn grid() -> GridNetwork {
        GridNetwork::new(GridSpec::paper())
    }

    #[test]
    fn paper_grid_dimensions() {
        let g = grid();
        let net = g.topology();
        assert_eq!(net.num_intersections(), 9);
        // Internal: 2·(3·2 + 2·3) = 24; boundary: 12 arms × 2 = 24.
        assert_eq!(net.num_roads(), 48);
        assert_eq!(net.entry_roads().len(), 12);
        assert_eq!(net.exit_roads().len(), 12);
        assert_eq!(g.entries().len(), 12);
    }

    #[test]
    fn one_by_one_grid_is_a_single_intersection() {
        let g = GridNetwork::new(GridSpec::with_size(1, 1));
        assert_eq!(g.topology().num_intersections(), 1);
        assert_eq!(g.topology().num_roads(), 8);
        assert_eq!(g.entries().len(), 4);
    }

    #[test]
    fn internal_roads_connect_opposite_arms() {
        let g = grid();
        let net = g.topology();
        let a = g.intersection_at(GridPos::new(1, 1));
        let b = g.intersection_at(GridPos::new(1, 2));
        // The road leaving (1,1) eastward must arrive at (1,2)'s west arm.
        let rid = net.intersection(a).outgoing_road(Approach::East.outgoing());
        let road = net.road(rid);
        assert_eq!(road.source(), Some((a, Approach::East.outgoing())));
        assert_eq!(road.dest(), Some((b, Approach::West.incoming())));
        assert!(road.is_internal());
    }

    #[test]
    fn top_right_is_northeast_corner() {
        let g = grid();
        assert_eq!(g.top_right(), g.intersection_at(GridPos::new(0, 2)));
        let name = g.topology().intersection(g.top_right()).name().to_string();
        assert_eq!(name, "I(0,2)");
    }

    #[test]
    fn entries_are_ordered_and_complete() {
        let g = grid();
        let sides: Vec<Approach> = g.entries().iter().map(|e| e.side).collect();
        assert_eq!(&sides[0..3], &[Approach::North; 3]);
        assert_eq!(&sides[3..6], &[Approach::East; 3]);
        assert_eq!(&sides[6..9], &[Approach::South; 3]);
        assert_eq!(&sides[9..12], &[Approach::West; 3]);
        for e in g.entries() {
            let road = g.topology().road(e.road);
            assert!(road.is_entry());
            assert_eq!(road.dest().map(|(i, _)| i), Some(e.intersection));
        }
    }

    #[test]
    fn straight_route_crosses_the_full_column() {
        let g = grid();
        // Enter from north, column 1.
        let entry = g.entries()[1];
        assert_eq!(entry.side, Approach::North);
        assert_eq!(entry.slot, 1);
        let route = g.route(&entry, RouteChoice::Straight);
        assert_eq!(route.hops().len(), 3);
        let cells: Vec<IntersectionId> = route.hops().iter().map(|&(i, _)| i).collect();
        assert_eq!(
            cells,
            vec![
                g.intersection_at(GridPos::new(0, 1)),
                g.intersection_at(GridPos::new(1, 1)),
                g.intersection_at(GridPos::new(2, 1)),
            ]
        );
        // Every hop is the straight movement from the north arm.
        for &(_, link) in route.hops() {
            assert_eq!(link, standard::link_id(Approach::North, Turn::Straight));
        }
    }

    #[test]
    fn turning_route_changes_direction_once() {
        let g = grid();
        // Enter from north column 0, turn LEFT (toward the east) at the
        // middle intersection of the path: (1,0) → continue east through
        // (1,1), (1,2), exit east boundary.
        let entry = g.entries()[0];
        let route = g.route(
            &entry,
            RouteChoice::TurnAt {
                turn: Turn::Left,
                path_index: 1,
            },
        );
        let cells: Vec<IntersectionId> = route.hops().iter().map(|&(i, _)| i).collect();
        assert_eq!(
            cells,
            vec![
                g.intersection_at(GridPos::new(0, 0)),
                g.intersection_at(GridPos::new(1, 0)),
                g.intersection_at(GridPos::new(1, 1)),
                g.intersection_at(GridPos::new(1, 2)),
            ]
        );
        let links: Vec<_> = route.hops().iter().map(|&(_, l)| l).collect();
        assert_eq!(links[0], standard::link_id(Approach::North, Turn::Straight));
        assert_eq!(links[1], standard::link_id(Approach::North, Turn::Left));
        // After turning east, the vehicle arrives from the west arm.
        assert_eq!(links[2], standard::link_id(Approach::West, Turn::Straight));
        assert_eq!(links[3], standard::link_id(Approach::West, Turn::Straight));
    }

    #[test]
    fn turn_at_last_intersection_exits_immediately() {
        let g = grid();
        // Enter from west row 0, turn right at the last column.
        let entry = g
            .entries()
            .iter()
            .copied()
            .find(|e| e.side == Approach::West && e.slot == 0)
            .unwrap();
        let route = g.route(
            &entry,
            RouteChoice::TurnAt {
                turn: Turn::Right,
                path_index: 2,
            },
        );
        // Right from westbound-entry heading east → exits south. At (0,2)
        // the southern neighbor is (1,2), so the route continues!
        let cells: Vec<IntersectionId> = route.hops().iter().map(|&(i, _)| i).collect();
        assert_eq!(
            cells.len(),
            5,
            "turn at (0,2) heads south through (1,2), (2,2)"
        );
        assert_eq!(cells[2], g.intersection_at(GridPos::new(0, 2)));
        assert_eq!(cells[3], g.intersection_at(GridPos::new(1, 2)));
        assert_eq!(cells[4], g.intersection_at(GridPos::new(2, 2)));
    }

    #[test]
    #[should_panic(expected = "beyond straight path")]
    fn rejects_turn_index_past_path() {
        let g = grid();
        let entry = g.entries()[0];
        let _ = g.route(
            &entry,
            RouteChoice::TurnAt {
                turn: Turn::Left,
                path_index: 3,
            },
        );
    }

    #[test]
    fn routes_end_at_exit_roads() {
        let g = grid();
        let net = g.topology();
        for entry in g.entries() {
            for choice in [
                RouteChoice::Straight,
                RouteChoice::TurnAt {
                    turn: Turn::Left,
                    path_index: 0,
                },
                RouteChoice::TurnAt {
                    turn: Turn::Right,
                    path_index: 2,
                },
            ] {
                let route = g.route(entry, choice);
                let &(last_i, last_l) = route.hops().last().unwrap();
                let node = net.intersection(last_i);
                let out = node.layout().link(last_l).to();
                let final_road = net.road(node.outgoing_road(out));
                // The final hop's outgoing road must leave the network, and
                // every intermediate hop must stay inside it.
                assert!(
                    final_road.is_exit(),
                    "route {choice:?} from {entry:?} ends on {}",
                    final_road.name()
                );
                for window in route.hops().windows(2) {
                    let (i, l) = window[0];
                    let node = net.intersection(i);
                    let mid = net.road(node.outgoing_road(node.layout().link(l).to()));
                    assert_eq!(mid.dest().map(|(n, _)| n), Some(window[1].0));
                }
            }
        }
    }

    #[test]
    fn grid_pos_neighbors_respect_bounds() {
        let p = GridPos::new(0, 0);
        assert_eq!(p.neighbor(Approach::North, 3, 3), None);
        assert_eq!(p.neighbor(Approach::West, 3, 3), None);
        assert_eq!(p.neighbor(Approach::South, 3, 3), Some(GridPos::new(1, 0)));
        assert_eq!(p.neighbor(Approach::East, 3, 3), Some(GridPos::new(0, 1)));
        let q = GridPos::new(2, 2);
        assert_eq!(q.neighbor(Approach::South, 3, 3), None);
        assert_eq!(q.neighbor(Approach::East, 3, 3), None);
    }

    #[test]
    fn rectangular_grids_build() {
        for (r, c) in [(1, 4), (4, 1), (2, 5), (5, 2)] {
            let g = GridNetwork::new(GridSpec::with_size(r, c));
            assert_eq!(g.topology().num_intersections(), (r * c) as usize);
            let expected_entries = 2 * (r + c);
            assert_eq!(g.entries().len(), expected_entries as usize);
        }
    }
}
