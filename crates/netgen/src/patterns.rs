//! The paper's demand inputs: Table I turning probabilities and Table II
//! arrival patterns.

use serde::{Deserialize, Serialize};
use utilbp_core::standard::{Approach, Turn};
use utilbp_core::{Tick, Ticks};

/// Turning probabilities of vehicles entering the network, by the side they
/// enter from (Table I of the paper). The straight probability is the
/// complement of right + left.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurningProbabilities {
    /// `(P(right), P(left))` indexed by entry side in `Approach::ALL`
    /// order.
    right_left: [(f64, f64); 4],
}

impl TurningProbabilities {
    /// Table I of the paper.
    ///
    /// | Entering from | North | East | South | West |
    /// |---------------|-------|------|-------|------|
    /// | P(right)      | 0.4   | 0.3  | 0.4   | 0.3  |
    /// | P(left)       | 0.2   | 0.3  | 0.3   | 0.4  |
    pub const PAPER: TurningProbabilities = TurningProbabilities {
        right_left: [(0.4, 0.2), (0.3, 0.3), (0.4, 0.3), (0.3, 0.4)],
    };

    /// Creates a table from per-side `(right, left)` probabilities in
    /// `Approach::ALL` order (North, East, South, West).
    ///
    /// # Errors
    ///
    /// Returns an error string if any probability is outside `[0, 1]` or a
    /// side's right + left exceeds 1.
    pub fn new(right_left: [(f64, f64); 4]) -> Result<Self, String> {
        for (i, &(r, l)) in right_left.iter().enumerate() {
            let side = Approach::ALL[i];
            if !(0.0..=1.0).contains(&r) || !(0.0..=1.0).contains(&l) {
                return Err(format!(
                    "turning probabilities for {side} must lie in [0,1], got ({r}, {l})"
                ));
            }
            if r + l > 1.0 + 1e-12 {
                return Err(format!("right + left for {side} is {} > 1", r + l));
            }
        }
        Ok(TurningProbabilities { right_left })
    }

    /// `P(right)` for vehicles entering from `side`.
    pub fn right(&self, side: Approach) -> f64 {
        self.right_left[side as usize].0
    }

    /// `P(left)` for vehicles entering from `side`.
    pub fn left(&self, side: Approach) -> f64 {
        self.right_left[side as usize].1
    }

    /// `P(straight) = 1 − P(right) − P(left)` for vehicles entering from
    /// `side`.
    pub fn straight(&self, side: Approach) -> f64 {
        (1.0 - self.right(side) - self.left(side)).max(0.0)
    }

    /// Maps a uniform sample `u ∈ [0, 1)` to a turn for a vehicle entering
    /// from `side` (right, then left, then straight bands).
    pub fn turn_for(&self, side: Approach, u: f64) -> Turn {
        let r = self.right(side);
        let l = self.left(side);
        if u < r {
            Turn::Right
        } else if u < r + l {
            Turn::Left
        } else {
            Turn::Straight
        }
    }
}

impl Default for TurningProbabilities {
    fn default() -> Self {
        TurningProbabilities::PAPER
    }
}

/// The paper's Table II arrival patterns: average inter-arrival time (s) of
/// vehicles at each entry road, by network side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Pattern I — "adjacent heavy": N 3 s, E 5 s, S 7 s, W 9 s.
    I,
    /// Pattern II — "uniform": 6 s on every side.
    II,
    /// Pattern III — "opposite heavy": N 3 s, E 7 s, S 5 s, W 9 s.
    III,
    /// Pattern IV — "single heavy": N 3 s, E 9 s, S 9 s, W 9 s.
    IV,
}

impl Pattern {
    /// All four patterns in paper order.
    pub const ALL: [Pattern; 4] = [Pattern::I, Pattern::II, Pattern::III, Pattern::IV];

    /// The paper's description of the pattern.
    pub fn description(self) -> &'static str {
        match self {
            Pattern::I => "adjacent heavy",
            Pattern::II => "uniform",
            Pattern::III => "opposite heavy",
            Pattern::IV => "single heavy",
        }
    }

    /// Average inter-arrival time in seconds at each entry road on `side`
    /// (Table II).
    pub fn inter_arrival_s(self, side: Approach) -> f64 {
        match (self, side) {
            (Pattern::I, Approach::North) => 3.0,
            (Pattern::I, Approach::East) => 5.0,
            (Pattern::I, Approach::South) => 7.0,
            (Pattern::I, Approach::West) => 9.0,
            (Pattern::II, _) => 6.0,
            (Pattern::III, Approach::North) => 3.0,
            (Pattern::III, Approach::East) => 7.0,
            (Pattern::III, Approach::South) => 5.0,
            (Pattern::III, Approach::West) => 9.0,
            (Pattern::IV, Approach::North) => 3.0,
            (Pattern::IV, _) => 9.0,
        }
    }

    /// Arrival rate `λ` in vehicles per second at each entry road on
    /// `side`.
    pub fn rate_per_s(self, side: Approach) -> f64 {
        1.0 / self.inter_arrival_s(side)
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Pattern::I => "I",
            Pattern::II => "II",
            Pattern::III => "III",
            Pattern::IV => "IV",
        };
        f.write_str(s)
    }
}

/// A time-varying demand: a sequence of `(duration, pattern)` segments.
///
/// The paper simulates each pattern for 1 h, plus a *mixed* pattern of 4 h
/// concatenating patterns I–IV.
///
/// # Examples
///
/// ```
/// use utilbp_core::{Tick, Ticks};
/// use utilbp_netgen::{DemandSchedule, Pattern};
///
/// let mixed = DemandSchedule::mixed(Ticks::new(3600));
/// assert_eq!(mixed.total_duration(), Ticks::new(4 * 3600));
/// assert_eq!(mixed.pattern_at(Tick::new(0)), Pattern::I);
/// assert_eq!(mixed.pattern_at(Tick::new(3600)), Pattern::II);
/// assert_eq!(mixed.pattern_at(Tick::new(4 * 3600)), Pattern::IV); // clamps
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandSchedule {
    segments: Vec<(Ticks, Pattern)>,
}

impl DemandSchedule {
    /// A single pattern for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn constant(pattern: Pattern, duration: Ticks) -> Self {
        assert!(!duration.is_zero(), "schedule duration must be positive");
        DemandSchedule {
            segments: vec![(duration, pattern)],
        }
    }

    /// The paper's mixed pattern: I, II, III, IV in sequence,
    /// `hour` ticks each.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is zero.
    pub fn mixed(hour: Ticks) -> Self {
        assert!(!hour.is_zero(), "segment duration must be positive");
        DemandSchedule {
            segments: Pattern::ALL.iter().map(|&p| (hour, p)).collect(),
        }
    }

    /// A custom segment sequence.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or any duration is zero.
    pub fn from_segments(segments: Vec<(Ticks, Pattern)>) -> Self {
        assert!(!segments.is_empty(), "schedule must have segments");
        assert!(
            segments.iter().all(|(d, _)| !d.is_zero()),
            "segment durations must be positive"
        );
        DemandSchedule { segments }
    }

    /// The segments in order.
    pub fn segments(&self) -> &[(Ticks, Pattern)] {
        &self.segments
    }

    /// Total scheduled duration.
    pub fn total_duration(&self) -> Ticks {
        self.segments
            .iter()
            .fold(Ticks::ZERO, |acc, &(d, _)| acc + d)
    }

    /// The pattern active at `tick`. Past the end of the schedule, the last
    /// segment's pattern persists.
    pub fn pattern_at(&self, tick: Tick) -> Pattern {
        let mut start = 0u64;
        for &(d, p) in &self.segments {
            let end = start + d.count();
            if tick.index() < end {
                return p;
            }
            start = end;
        }
        self.segments.last().expect("segments are non-empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_probabilities() {
        let t = TurningProbabilities::PAPER;
        assert_eq!(t.right(Approach::North), 0.4);
        assert_eq!(t.left(Approach::North), 0.2);
        assert!((t.straight(Approach::North) - 0.4).abs() < 1e-12);
        assert_eq!(t.right(Approach::East), 0.3);
        assert_eq!(t.left(Approach::East), 0.3);
        assert_eq!(t.right(Approach::South), 0.4);
        assert_eq!(t.left(Approach::South), 0.3);
        assert_eq!(t.right(Approach::West), 0.3);
        assert_eq!(t.left(Approach::West), 0.4);
    }

    #[test]
    fn turn_bands_partition_the_unit_interval() {
        let t = TurningProbabilities::PAPER;
        assert_eq!(t.turn_for(Approach::North, 0.0), Turn::Right);
        assert_eq!(t.turn_for(Approach::North, 0.39), Turn::Right);
        assert_eq!(t.turn_for(Approach::North, 0.41), Turn::Left);
        assert_eq!(t.turn_for(Approach::North, 0.59), Turn::Left);
        assert_eq!(t.turn_for(Approach::North, 0.61), Turn::Straight);
        assert_eq!(t.turn_for(Approach::North, 0.999), Turn::Straight);
    }

    #[test]
    fn custom_probabilities_validate() {
        assert!(TurningProbabilities::new([(0.5, 0.5); 4]).is_ok());
        assert!(
            TurningProbabilities::new([(0.7, 0.5), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]).is_err()
        );
        assert!(
            TurningProbabilities::new([(-0.1, 0.5), (0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]).is_err()
        );
    }

    #[test]
    fn table2_inter_arrival_times() {
        use Approach::*;
        assert_eq!(Pattern::I.inter_arrival_s(North), 3.0);
        assert_eq!(Pattern::I.inter_arrival_s(East), 5.0);
        assert_eq!(Pattern::I.inter_arrival_s(South), 7.0);
        assert_eq!(Pattern::I.inter_arrival_s(West), 9.0);
        for side in Approach::ALL {
            assert_eq!(Pattern::II.inter_arrival_s(side), 6.0);
        }
        assert_eq!(Pattern::III.inter_arrival_s(East), 7.0);
        assert_eq!(Pattern::III.inter_arrival_s(South), 5.0);
        assert_eq!(Pattern::IV.inter_arrival_s(North), 3.0);
        assert_eq!(Pattern::IV.inter_arrival_s(East), 9.0);
        assert_eq!(Pattern::IV.inter_arrival_s(West), 9.0);
    }

    #[test]
    fn rates_are_reciprocal_inter_arrivals() {
        assert!((Pattern::I.rate_per_s(Approach::North) - 1.0 / 3.0).abs() < 1e-12);
        assert!((Pattern::II.rate_per_s(Approach::East) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_segment_lookup() {
        let s = DemandSchedule::from_segments(vec![
            (Ticks::new(10), Pattern::I),
            (Ticks::new(5), Pattern::IV),
        ]);
        assert_eq!(s.total_duration(), Ticks::new(15));
        assert_eq!(s.pattern_at(Tick::new(0)), Pattern::I);
        assert_eq!(s.pattern_at(Tick::new(9)), Pattern::I);
        assert_eq!(s.pattern_at(Tick::new(10)), Pattern::IV);
        assert_eq!(s.pattern_at(Tick::new(14)), Pattern::IV);
        assert_eq!(s.pattern_at(Tick::new(100)), Pattern::IV, "clamps to last");
    }

    #[test]
    fn mixed_schedule_matches_paper() {
        let hour = Ticks::new(3600);
        let s = DemandSchedule::mixed(hour);
        assert_eq!(s.segments().len(), 4);
        assert_eq!(s.total_duration(), Ticks::new(14_400));
        assert_eq!(s.pattern_at(Tick::new(7200)), Pattern::III);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn schedule_rejects_zero_duration() {
        let _ = DemandSchedule::constant(Pattern::I, Ticks::ZERO);
    }

    #[test]
    fn pattern_display_and_description() {
        assert_eq!(Pattern::III.to_string(), "III");
        assert_eq!(Pattern::IV.description(), "single heavy");
    }
}
