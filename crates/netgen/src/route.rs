//! Vehicle routes through a network.

use serde::{Deserialize, Serialize};
use utilbp_core::LinkId;

use crate::topology::{IntersectionId, RoadId};

/// An ordered sequence of intersection crossings: the movement (link) a
/// vehicle takes at each junction from its entry road to the boundary.
///
/// Simulators advance a cursor through the hops; [`Route::hop`] yields the
/// movement to queue for at the `n`-th intersection of the journey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    entry: RoadId,
    hops: Vec<(IntersectionId, LinkId)>,
}

impl Route {
    /// Creates a route from its entry road and crossing sequence.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty — a vehicle that enters the network must
    /// cross at least one intersection.
    pub fn new(entry: RoadId, hops: Vec<(IntersectionId, LinkId)>) -> Self {
        assert!(
            !hops.is_empty(),
            "a route must cross at least one intersection"
        );
        Route { entry, hops }
    }

    /// The boundary entry road where the vehicle appears.
    pub fn entry(&self) -> RoadId {
        self.entry
    }

    /// All crossings in order.
    pub fn hops(&self) -> &[(IntersectionId, LinkId)] {
        &self.hops
    }

    /// The `n`-th crossing, if the route is that long.
    pub fn hop(&self, n: usize) -> Option<(IntersectionId, LinkId)> {
        self.hops.get(n).copied()
    }

    /// Number of intersections crossed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Routes are never empty; this always returns `false` and exists for
    /// API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes the route into a durable word stream.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push_u32(self.entry.index() as u32);
        writer.push_usize(self.hops.len());
        for &(i, l) in &self.hops {
            writer.push_u32(i.index() as u32);
            writer.push(l.index() as u64);
        }
    }

    /// Deserializes a route saved by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`](utilbp_core::state::StateError) on a
    /// truncated stream, an empty hop list, or a link word out of
    /// `u16` range.
    pub fn load_state(
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<Self, utilbp_core::state::StateError> {
        use utilbp_core::state::StateError;
        let entry = RoadId::new(reader.take_u32()?);
        let len = reader.take_usize()?;
        if len == 0 {
            return Err(StateError::Invalid {
                what: "route hop count",
                word: 0,
            });
        }
        let mut hops = Vec::with_capacity(len);
        for _ in 0..len {
            let i = IntersectionId::new(reader.take_u32()?);
            let word = reader.take()?;
            let link = u16::try_from(word).map_err(|_| StateError::Invalid {
                what: "route link",
                word,
            })?;
            hops.push((i, LinkId::new(link)));
        }
        Ok(Route { entry, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let hops = vec![
            (IntersectionId::new(0), LinkId::new(1)),
            (IntersectionId::new(3), LinkId::new(7)),
        ];
        let r = Route::new(RoadId::new(9), hops.clone());
        assert_eq!(r.entry(), RoadId::new(9));
        assert_eq!(r.hops(), &hops[..]);
        assert_eq!(r.hop(1), Some((IntersectionId::new(3), LinkId::new(7))));
        assert_eq!(r.hop(2), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one intersection")]
    fn rejects_empty_routes() {
        let _ = Route::new(RoadId::new(0), Vec::new());
    }
}
