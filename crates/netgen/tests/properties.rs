//! Property-based tests of grid construction, routing, and demand.

use proptest::prelude::*;
use utilbp_core::standard::Turn;
use utilbp_core::{Tick, Ticks};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern, RouteChoice,
};

fn turn_strategy() -> impl Strategy<Value = Turn> {
    prop_oneof![Just(Turn::Left), Just(Turn::Right)]
}

proptest! {
    /// Grids of any size build with the expected element counts.
    #[test]
    fn grid_inventory(rows in 1u32..=5, cols in 1u32..=5) {
        let g = GridNetwork::new(GridSpec::with_size(rows, cols));
        let net = g.topology();
        prop_assert_eq!(net.num_intersections(), (rows * cols) as usize);
        let internal = 2 * (rows * (cols - 1) + (rows - 1) * cols) as usize;
        let boundary = 2 * (2 * (rows + cols)) as usize;
        prop_assert_eq!(net.num_roads(), internal + boundary);
        prop_assert_eq!(g.entries().len(), (2 * (rows + cols)) as usize);
    }

    /// Every route, for every entry and admissible choice, is physically
    /// contiguous: each hop's exit road leads to the next hop's
    /// intersection, and the last hop exits the network.
    #[test]
    fn routes_are_contiguous_and_terminal(
        rows in 1u32..=4,
        cols in 1u32..=4,
        entry_idx in 0usize..100,
        turn in turn_strategy(),
        turn_pos in 0usize..10,
    ) {
        let g = GridNetwork::new(GridSpec::with_size(rows, cols));
        let entries = g.entries();
        let entry = entries[entry_idx % entries.len()];
        let path_len = g.straight_path_len(entry.side) as usize;
        let choice = if turn_pos % (path_len + 1) == path_len {
            RouteChoice::Straight
        } else {
            RouteChoice::TurnAt { turn, path_index: turn_pos % (path_len + 1) }
        };
        let route = g.route(&entry, choice);
        let net = g.topology();

        // Entry road feeds the first hop.
        let first = route.hops()[0].0;
        prop_assert_eq!(net.road(route.entry()).dest().map(|(i, _)| i), Some(first));

        for pair in route.hops().windows(2) {
            let (i, link) = pair[0];
            let node = net.intersection(i);
            let out = node.layout().link(link).to();
            let road = net.road(node.outgoing_road(out));
            prop_assert_eq!(road.dest().map(|(n, _)| n), Some(pair[1].0));
        }
        let (last_i, last_link) = *route.hops().last().unwrap();
        let node = net.intersection(last_i);
        let out = node.layout().link(last_link).to();
        prop_assert!(net.road(node.outgoing_road(out)).is_exit());

        // At most one non-straight movement per route (the paper's demand
        // model: a single randomly placed turn).
        let turns = route
            .hops()
            .iter()
            .filter(|&&(i, l)| {
                let link = net.intersection(i).layout().link(l);
                // A straight movement exits the arm opposite to its entry.
                let from = link.from().index();
                let to = link.to().index();
                (from + 2) % 4 != to
            })
            .count();
        prop_assert!(turns <= 1, "route has {turns} turns");
    }

    /// Demand generation: ticks are respected, ids unique, and every
    /// sampled route starts at a declared entry.
    #[test]
    fn demand_stream_is_well_formed(seed in 0u64..1000, pattern_idx in 0usize..4) {
        let g = GridNetwork::new(GridSpec::paper());
        let pattern = Pattern::ALL[pattern_idx];
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(pattern, Ticks::new(120))),
            seed,
        );
        let entry_roads: Vec<_> = g.entries().iter().map(|e| e.road).collect();
        let mut seen = std::collections::HashSet::new();
        for k in 0..120u64 {
            for arrival in demand.poll(&g, Tick::new(k)) {
                prop_assert_eq!(arrival.tick, Tick::new(k));
                prop_assert!(seen.insert(arrival.vehicle));
                prop_assert!(entry_roads.contains(&arrival.route.entry()));
            }
        }
        prop_assert_eq!(seen.len() as u64, demand.generated());
    }

    /// The schedule lookup is consistent with segment arithmetic for any
    /// segment layout.
    #[test]
    fn schedule_lookup_matches_prefix_sums(
        durations in proptest::collection::vec(1u64..500, 1..6),
        probe in 0u64..3000,
    ) {
        let segments: Vec<(Ticks, Pattern)> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| (Ticks::new(d), Pattern::ALL[i % 4]))
            .collect();
        let schedule = DemandSchedule::from_segments(segments.clone());
        let mut start = 0u64;
        let mut expected = segments.last().unwrap().1;
        for &(d, p) in &segments {
            if probe < start + d.count() {
                expected = p;
                break;
            }
            start += d.count();
        }
        prop_assert_eq!(schedule.pattern_at(Tick::new(probe)), expected);
    }
}
