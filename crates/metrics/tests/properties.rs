//! Property-based tests of the metrics primitives.

use proptest::prelude::*;
use utilbp_core::{PhaseDecision, PhaseId, Tick};
use utilbp_metrics::{PhaseTrace, SummaryStats, TimeSeries, VehicleId, WaitingLedger};

proptest! {
    /// Merging partial accumulators equals sequential accumulation, for
    /// any split of any sample stream.
    #[test]
    fn summary_merge_equals_sequential(
        data in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(data.len());
        let mut left = SummaryStats::new();
        for &x in &data[..split] {
            left.record(x);
        }
        let mut right = SummaryStats::new();
        for &x in &data[split..] {
            right.record(x);
        }
        left.merge(&right);

        let mut seq = SummaryStats::new();
        for &x in &data {
            seq.record(x);
        }
        prop_assert_eq!(left.count(), seq.count());
        prop_assert!((left.mean() - seq.mean()).abs() < 1e-6 * (1.0 + seq.mean().abs()));
        prop_assert!(
            (left.population_variance() - seq.population_variance()).abs()
                < 1e-4 * (1.0 + seq.population_variance())
        );
        prop_assert_eq!(left.min(), seq.min());
        prop_assert_eq!(left.max(), seq.max());
    }

    /// Mean and extrema are always within the sample range.
    #[test]
    fn summary_mean_is_bounded(data in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = SummaryStats::new();
        for &x in &data {
            s.record(x);
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(min <= max);
        prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
        prop_assert!(s.population_variance() >= 0.0);
    }

    /// Run-length compression round-trips: expanding a trace reproduces
    /// exactly the recorded per-tick values, and per-value times sum to
    /// the horizon.
    #[test]
    fn phase_trace_roundtrip(values in proptest::collection::vec(0u8..=4, 1..300)) {
        let mut trace = PhaseTrace::new("t");
        for (k, &v) in values.iter().enumerate() {
            let decision = if v == 0 {
                PhaseDecision::Transition
            } else {
                PhaseDecision::Control(PhaseId::new(v - 1))
            };
            trace.record(Tick::new(k as u64), decision);
        }
        prop_assert_eq!(trace.expand(), values.clone());
        let total: u64 = (0u8..=4).map(|v| trace.time_at(v).count()).sum();
        prop_assert_eq!(total, values.len() as u64);
        // Segment count equals the number of value changes plus one.
        let changes = values.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert_eq!(trace.segments().len(), changes + 1);
        prop_assert_eq!(trace.num_switches(), changes);
    }

    /// Run lengths of each value sum to that value's total time.
    #[test]
    fn phase_trace_run_lengths_partition(values in proptest::collection::vec(0u8..=4, 1..200)) {
        let mut trace = PhaseTrace::new("t");
        for (k, &v) in values.iter().enumerate() {
            let decision = if v == 0 {
                PhaseDecision::Transition
            } else {
                PhaseDecision::Control(PhaseId::new(v - 1))
            };
            trace.record(Tick::new(k as u64), decision);
        }
        for v in 0u8..=4 {
            let runs: u64 = trace.run_lengths(v).iter().map(|d| d.count()).sum();
            prop_assert_eq!(runs, trace.time_at(v).count());
        }
    }

    /// Decimation keeps the first sample and at most ⌈n/stride⌉ samples.
    #[test]
    fn decimation_bounds(
        n in 1usize..500,
        stride in 1usize..50,
    ) {
        let mut s = TimeSeries::new("s");
        for k in 0..n {
            s.push(Tick::new(k as u64), k as f64);
        }
        let d = s.decimate(stride);
        prop_assert_eq!(d.len(), n.div_ceil(stride));
        prop_assert_eq!(d.points()[0], (Tick::new(0), 0.0));
    }

    /// Ledger accounting: the mean including actives is a convex
    /// combination of completed and active means.
    #[test]
    fn ledger_snapshot_mean_is_convex(
        completed_waits in proptest::collection::vec(0u64..1000, 0..50),
        active_waits in proptest::collection::vec(0u64..1000, 0..50),
    ) {
        let mut ledger = WaitingLedger::new();
        let mut id = 0u64;
        for &w in &completed_waits {
            let v = VehicleId::new(id);
            id += 1;
            ledger.enter(v, Tick::ZERO);
            ledger.complete(v, Tick::new(1000), w);
        }
        // Active vehicles carry their accumulators outside the ledger and
        // are folded in at query time.
        for _ in &active_waits {
            ledger.enter(VehicleId::new(id), Tick::ZERO);
            id += 1;
        }
        let n = completed_waits.len() + active_waits.len();
        if n == 0 {
            prop_assert_eq!(
                ledger.mean_waiting_including_active(active_waits.iter().copied()),
                0.0
            );
        } else {
            let expected: f64 = completed_waits
                .iter()
                .chain(&active_waits)
                .map(|&w| w as f64)
                .sum::<f64>()
                / n as f64;
            prop_assert!(
                (ledger.mean_waiting_including_active(active_waits.iter().copied()) - expected)
                    .abs()
                    < 1e-9
            );
        }
        prop_assert_eq!(ledger.completed(), completed_waits.len() as u64);
        prop_assert_eq!(ledger.active(), active_waits.len());
    }
}
