//! Plain-text rendering: CSV, aligned tables, and ASCII charts.
//!
//! The experiment harness regenerates the paper's tables and figures as
//! terminal output; these helpers keep that output consistent and diffable.

use crate::TimeSeries;

/// Builds an aligned plain-text table (also valid Markdown).
///
/// # Examples
///
/// ```
/// use utilbp_metrics::TextTable;
///
/// let mut t = TextTable::new(["Pattern", "CAP-BP", "UTIL-BP"]);
/// t.push_row(["I", "102.87", "97.97"]);
/// let rendered = t.render();
/// assert!(rendered.contains("| Pattern |"));
/// assert!(rendered.contains("97.97"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn push_row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned pipes and a separator row.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 2 - 1)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders one or more series as an ASCII scatter chart, one marker symbol
/// per series, with y-axis labels — enough to eyeball the shape of the
/// paper's figures in a terminal.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_metrics::{ascii_chart, TimeSeries};
///
/// let mut s = TimeSeries::new("queue");
/// for k in 0..50 {
///     s.push(Tick::new(k), (k as f64 / 5.0).sin() * 10.0 + 10.0);
/// }
/// let chart = ascii_chart(&[&s], 60, 12);
/// assert!(chart.contains("queue"));
/// ```
pub fn ascii_chart(series: &[&TimeSeries], width: usize, height: usize) -> String {
    const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(16);
    let height = height.max(4);

    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for s in series {
        for (t, v) in s.iter() {
            x_min = x_min.min(t.index() as f64);
            x_max = x_max.max(t.index() as f64);
            y_min = y_min.min(v);
            y_max = y_max.max(v);
        }
    }
    if !x_min.is_finite() {
        return String::from("(no data)\n");
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for (t, v) in s.iter() {
            let gx = ((t.index() as f64 - x_min) / (x_max - x_min) * (width - 1) as f64).round()
                as usize;
            let gy = ((v - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - gy.min(height - 1);
            grid[row][gx.min(width - 1)] = marker;
        }
    }

    let label_w = 10;
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == (height - 1) / 2 {
            format!("{y_here:>9.1} ")
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<w$.0}{:>w2$.0}\n",
        " ".repeat(label_w + 1),
        x_min,
        x_max,
        w = width / 2,
        w2 = width - width / 2 - 1,
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{}{} {}\n",
            " ".repeat(label_w + 1),
            MARKERS[si % MARKERS.len()],
            s.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::Tick;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = TextTable::new(["A", "Long header"]);
        t.push_row(["xx", "1"]);
        t.push_row(["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| A "));
        assert!(lines[1].starts_with("|--"));
        // All rows have the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
        t.push_row(["1", "2", "3-dropped"]);
        assert_eq!(t.num_rows(), 2);
        let s = t.render();
        assert!(!s.contains("3-dropped"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(["name", "value"]);
        t.push_row(["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn chart_handles_empty_and_flat_series() {
        let empty = TimeSeries::new("e");
        assert_eq!(ascii_chart(&[&empty], 40, 8), "(no data)\n");

        let mut flat = TimeSeries::new("flat");
        flat.push(Tick::new(0), 5.0);
        flat.push(Tick::new(10), 5.0);
        let chart = ascii_chart(&[&flat], 40, 8);
        assert!(chart.contains("flat"));
        assert!(chart.contains('*'));
    }

    #[test]
    fn chart_places_extremes_on_opposite_rows() {
        let mut s = TimeSeries::new("ramp");
        for k in 0..=10 {
            s.push(Tick::new(k), k as f64);
        }
        let chart = ascii_chart(&[&s], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row holds the max, bottom data row holds the min.
        assert!(lines[0].contains('*'));
        assert!(lines[9].contains('*'));
    }
}
