//! Named time series sampled at discrete ticks.

use serde::{Deserialize, Serialize};
use utilbp_core::Tick;

use crate::SummaryStats;

/// A named sequence of `(tick, value)` samples, in non-decreasing tick
/// order.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_metrics::TimeSeries;
///
/// let mut queue_len = TimeSeries::new("queue length");
/// queue_len.push(Tick::new(0), 0.0);
/// queue_len.push(Tick::new(1), 3.0);
/// assert_eq!(queue_len.len(), 2);
/// assert_eq!(queue_len.last(), Some((Tick::new(1), 3.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Tick, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `tick` precedes the last recorded tick.
    pub fn push(&mut self, tick: Tick, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= tick),
            "time series samples must be pushed in tick order"
        );
        self.points.push((tick, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(tick, value)` samples in order.
    pub fn iter(&self) -> impl Iterator<Item = (Tick, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The samples as a slice.
    pub fn points(&self) -> &[(Tick, f64)] {
        &self.points
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(Tick, f64)> {
        self.points.last().copied()
    }

    /// Summary statistics over the values.
    pub fn stats(&self) -> SummaryStats {
        let mut s = SummaryStats::new();
        for &(_, v) in &self.points {
            s.record(v);
        }
        s
    }

    /// Mean of the values (0 if empty).
    pub fn mean(&self) -> f64 {
        self.stats().mean()
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.stats().max()
    }

    /// Keeps every `stride`-th sample (always keeping the first), returning
    /// a thinned copy — useful before plotting long runs.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn decimate(&self, stride: usize) -> TimeSeries {
        assert!(stride > 0, "stride must be positive");
        TimeSeries {
            name: self.name.clone(),
            points: self.points.iter().step_by(stride).copied().collect(),
        }
    }

    /// Renders the series as two-column CSV (`tick,value`) with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tick,value\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{}\n", t.index(), v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("s");
        assert!(s.is_empty());
        s.push(Tick::new(0), 1.0);
        s.push(Tick::new(2), 5.0);
        s.push(Tick::new(2), 6.0); // equal ticks allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((Tick::new(2), 6.0)));
        assert_eq!(s.points()[1], (Tick::new(2), 5.0));
        assert_eq!(s.name(), "s");
    }

    #[test]
    #[should_panic(expected = "tick order")]
    fn rejects_out_of_order_ticks() {
        let mut s = TimeSeries::new("s");
        s.push(Tick::new(5), 1.0);
        s.push(Tick::new(4), 2.0);
    }

    #[test]
    fn stats_over_values() {
        let mut s = TimeSeries::new("s");
        for (i, v) in [2.0, 4.0, 6.0].into_iter().enumerate() {
            s.push(Tick::new(i as u64), v);
        }
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.stats().count(), 3);
    }

    #[test]
    fn decimation_keeps_first_and_strides() {
        let mut s = TimeSeries::new("s");
        for i in 0..10 {
            s.push(Tick::new(i), i as f64);
        }
        let d = s.decimate(4);
        let ticks: Vec<u64> = d.iter().map(|(t, _)| t.index()).collect();
        assert_eq!(ticks, vec![0, 4, 8]);
        assert_eq!(d.name(), "s");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = TimeSeries::new("s");
        s.push(Tick::new(1), 2.5);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("tick,value"));
        assert_eq!(lines.next(), Some("1,2.5"));
        assert_eq!(lines.next(), None);
    }
}
