//! Run-length-compressed phase traces (the data behind the paper's
//! Figs. 3–4).

use serde::{Deserialize, Serialize};
use utilbp_core::{PhaseDecision, Tick, Ticks};

/// Records which phase a controller applied at every tick, compressed as
/// runs of equal values.
///
/// Values follow the paper's plotting convention
/// ([`PhaseDecision::trace_value`]): 0 is the transition (amber) phase,
/// `1..=|C|` are the control phases `c1..`.
///
/// # Examples
///
/// ```
/// use utilbp_core::{PhaseDecision, PhaseId, Tick};
/// use utilbp_metrics::PhaseTrace;
///
/// let mut trace = PhaseTrace::new("top-right intersection");
/// trace.record(Tick::new(0), PhaseDecision::Control(PhaseId::new(0)));
/// trace.record(Tick::new(1), PhaseDecision::Control(PhaseId::new(0)));
/// trace.record(Tick::new(2), PhaseDecision::Transition);
/// assert_eq!(trace.num_switches(), 1);
/// assert_eq!(trace.value_at(Tick::new(1)), Some(1));
/// assert_eq!(trace.value_at(Tick::new(2)), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTrace {
    name: String,
    /// `(start_tick, trace_value)` for each run of equal values.
    runs: Vec<(Tick, u8)>,
    /// One past the last recorded tick.
    end: Tick,
}

impl PhaseTrace {
    /// Creates an empty trace with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        PhaseTrace {
            name: name.into(),
            runs: Vec::new(),
            end: Tick::ZERO,
        }
    }

    /// The trace's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records the decision applied during `[tick, tick+1)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `tick` precedes the previously recorded
    /// tick (traces must be recorded in order).
    pub fn record(&mut self, tick: Tick, decision: PhaseDecision) {
        debug_assert!(
            tick + Ticks::ONE >= self.end,
            "phase trace must be recorded in tick order"
        );
        let value = decision.trace_value();
        match self.runs.last() {
            Some(&(_, last)) if last == value => {}
            _ => self.runs.push((tick, value)),
        }
        self.end = tick.next();
    }

    /// The run-length representation: `(start_tick, trace_value)` pairs.
    pub fn segments(&self) -> &[(Tick, u8)] {
        &self.runs
    }

    /// One past the last recorded tick.
    pub fn end(&self) -> Tick {
        self.end
    }

    /// The trace value applied at `tick`, if within the recorded range.
    pub fn value_at(&self, tick: Tick) -> Option<u8> {
        if tick >= self.end {
            return None;
        }
        match self.runs.binary_search_by(|&(start, _)| start.cmp(&tick)) {
            Ok(i) => Some(self.runs[i].1),
            Err(0) => None,
            Err(i) => Some(self.runs[i - 1].1),
        }
    }

    /// Number of value changes (each paid transition *and* each phase
    /// activation counts as one change).
    pub fn num_switches(&self) -> usize {
        self.runs.len().saturating_sub(1)
    }

    /// Number of amber periods (runs with value 0).
    pub fn num_transitions(&self) -> usize {
        self.runs.iter().filter(|&&(_, v)| v == 0).count()
    }

    /// Total ticks spent at `value` within the recorded range.
    pub fn time_at(&self, value: u8) -> Ticks {
        let mut total = Ticks::ZERO;
        for (i, &(start, v)) in self.runs.iter().enumerate() {
            if v != value {
                continue;
            }
            let end = self.runs.get(i + 1).map(|&(s, _)| s).unwrap_or(self.end);
            total += end - start;
        }
        total
    }

    /// Durations of every run with `value`, in order — e.g. the green-time
    /// distribution of one phase.
    pub fn run_lengths(&self, value: u8) -> Vec<Ticks> {
        let mut out = Vec::new();
        for (i, &(start, v)) in self.runs.iter().enumerate() {
            if v != value {
                continue;
            }
            let end = self.runs.get(i + 1).map(|&(s, _)| s).unwrap_or(self.end);
            out.push(end - start);
        }
        out
    }

    /// Expands the trace into per-tick values over the recorded range.
    pub fn expand(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.end.index() as usize);
        for (i, &(start, v)) in self.runs.iter().enumerate() {
            let end = self.runs.get(i + 1).map(|&(s, _)| s).unwrap_or(self.end);
            for _ in start.index()..end.index() {
                out.push(v);
            }
        }
        out
    }

    /// Renders the trace as CSV (`tick,phase`) using the run-length
    /// boundaries (one row per change, plus the final end row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tick,phase\n");
        for &(t, v) in &self.runs {
            out.push_str(&format!("{},{}\n", t.index(), v));
        }
        if let Some(&(_, last)) = self.runs.last() {
            out.push_str(&format!("{},{}\n", self.end.index(), last));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::PhaseId;

    fn control(i: u8) -> PhaseDecision {
        PhaseDecision::Control(PhaseId::new(i))
    }

    #[test]
    fn compresses_runs() {
        let mut t = PhaseTrace::new("x");
        for k in 0..5 {
            t.record(Tick::new(k), control(0));
        }
        for k in 5..8 {
            t.record(Tick::new(k), PhaseDecision::Transition);
        }
        for k in 8..10 {
            t.record(Tick::new(k), control(2));
        }
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.segments()[0], (Tick::new(0), 1));
        assert_eq!(t.segments()[1], (Tick::new(5), 0));
        assert_eq!(t.segments()[2], (Tick::new(8), 3));
        assert_eq!(t.end(), Tick::new(10));
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_transitions(), 1);
    }

    #[test]
    fn value_lookup_and_durations() {
        let mut t = PhaseTrace::new("x");
        for k in 0..4 {
            t.record(Tick::new(k), control(1));
        }
        for k in 4..6 {
            t.record(Tick::new(k), PhaseDecision::Transition);
        }
        for k in 6..9 {
            t.record(Tick::new(k), control(1));
        }
        assert_eq!(t.value_at(Tick::new(0)), Some(2));
        assert_eq!(t.value_at(Tick::new(5)), Some(0));
        assert_eq!(t.value_at(Tick::new(8)), Some(2));
        assert_eq!(t.value_at(Tick::new(9)), None, "past the end");
        assert_eq!(t.time_at(2), Ticks::new(7));
        assert_eq!(t.time_at(0), Ticks::new(2));
        assert_eq!(t.run_lengths(2), vec![Ticks::new(4), Ticks::new(3)]);
    }

    #[test]
    fn expand_reconstructs_per_tick_values() {
        let mut t = PhaseTrace::new("x");
        t.record(Tick::new(0), control(0));
        t.record(Tick::new(1), control(0));
        t.record(Tick::new(2), PhaseDecision::Transition);
        assert_eq!(t.expand(), vec![1, 1, 0]);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = PhaseTrace::new("x");
        assert_eq!(t.segments().len(), 0);
        assert_eq!(t.num_switches(), 0);
        assert_eq!(t.value_at(Tick::ZERO), None);
        assert_eq!(t.expand(), Vec::<u8>::new());
        assert_eq!(t.to_csv(), "tick,phase\n");
    }

    #[test]
    fn csv_includes_boundaries() {
        let mut t = PhaseTrace::new("x");
        t.record(Tick::new(0), control(0));
        t.record(Tick::new(1), PhaseDecision::Transition);
        let csv = t.to_csv();
        assert_eq!(csv, "tick,phase\n0,1\n1,0\n2,0\n");
    }
}
