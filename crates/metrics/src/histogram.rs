//! Fixed-bin histograms with percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram over non-negative samples with uniform bin width, plus an
/// overflow bin. Designed for waiting-time distributions, where means hide
/// the tail that drivers actually complain about.
///
/// # Examples
///
/// ```
/// use utilbp_metrics::Histogram;
///
/// let mut h = Histogram::new(10.0, 20); // 20 bins of 10 s
/// for w in [5.0, 15.0, 15.0, 40.0, 250.0] {
///     h.record(w);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1); // 250 s exceeds 20 × 10 s
/// assert!(h.percentile(50.0).unwrap() <= 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite, or if
    /// `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin_width must be positive"
        );
        assert!(bins > 0, "at least one bin required");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample. Negative samples clamp into the first bin.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let idx = (value.max(0.0) / self.bin_width).floor() as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Samples beyond the last bin.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bin counts (without the overflow bin).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The bin width.
    pub const fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// The `p`-th percentile (0–100), as the upper edge of the bin where
    /// the cumulative count crosses `p`% — `None` if empty or if the
    /// percentile falls into the overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.count == 0 {
            return None;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        None // falls in the overflow bin
    }

    /// Appends the histogram (geometry and counts) to a checkpoint
    /// stream.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push_f64(self.bin_width);
        writer.push_usize(self.bins.len());
        for &n in &self.bins {
            writer.push(n);
        }
        writer.push(self.overflow);
        writer.push(self.count);
    }

    /// Reads a histogram written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`StateError`](utilbp_core::state::StateError) when the stream
    /// is truncated or encodes an invalid geometry.
    pub fn load_state(
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<Self, utilbp_core::state::StateError> {
        let bin_width = reader.take_f64()?;
        if !(bin_width.is_finite() && bin_width > 0.0) {
            return Err(utilbp_core::state::StateError::Invalid {
                what: "histogram bin width",
                word: bin_width.to_bits(),
            });
        }
        let len = reader.take_usize()?;
        if len == 0 {
            return Err(utilbp_core::state::StateError::Invalid {
                what: "histogram bin count",
                word: 0,
            });
        }
        let mut bins = Vec::with_capacity(len);
        for _ in 0..len {
            bins.push(reader.take()?);
        }
        Ok(Histogram {
            bin_width,
            bins,
            overflow: reader.take()?,
            count: reader.take()?,
        })
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths or counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// Renders a compact ASCII bar chart of the distribution.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &n) in self.bins.iter().enumerate() {
            let bar = "#".repeat((n as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "{:>8.0}-{:<8.0} {:>7} |{}\n",
                i as f64 * self.bin_width,
                (i + 1) as f64 * self.bin_width,
                n,
                bar
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>17} {:>7} |(overflow)\n", ">", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(10.0, 3);
        h.record(0.0);
        h.record(9.99);
        h.record(10.0);
        h.record(25.0);
        h.record(30.0); // exactly at the edge → overflow
        h.record(-5.0); // clamps to bin 0
        assert_eq!(h.bins(), &[3, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.percentile(1.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(99.0), Some(99.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
    }

    #[test]
    fn empty_and_overflow_percentiles() {
        let h = Histogram::new(10.0, 5);
        assert_eq!(h.percentile(50.0), None);

        let mut h = Histogram::new(10.0, 2);
        h.record(500.0);
        assert_eq!(h.percentile(50.0), None, "overflow has no upper edge");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(5.0, 4);
        a.record(2.0);
        a.record(7.0);
        let mut b = Histogram::new(5.0, 4);
        b.record(7.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bins(), &[1, 2, 0, 0]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(5.0, 4);
        let b = Histogram::new(10.0, 4);
        a.merge(&b);
    }

    #[test]
    fn render_is_nonempty_and_marks_overflow() {
        let mut h = Histogram::new(10.0, 3);
        h.record(5.0);
        h.record(500.0);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.contains("overflow"));
    }

    #[test]
    #[should_panic(expected = "bin_width")]
    fn rejects_bad_bin_width() {
        let _ = Histogram::new(0.0, 3);
    }
}
