//! # utilbp-metrics
//!
//! Measurement and reporting utilities shared by the adaptive back-pressure
//! simulators and experiment harness:
//!
//! - [`SummaryStats`] — streaming mean/variance/min/max with parallel merge;
//! - [`TimeSeries`] — named `(tick, value)` sequences (queue lengths,
//!   Fig. 5);
//! - [`PhaseTrace`] — run-length-compressed controller decisions
//!   (Figs. 3–4);
//! - [`WaitingLedger`] / [`VehicleId`] — per-vehicle queuing-time
//!   accounting (Fig. 2, Table III);
//! - [`TextTable`] and [`ascii_chart`] — diffable plain-text rendering of
//!   tables and figure shapes.
//!
//! ```
//! use utilbp_core::Tick;
//! use utilbp_metrics::{SummaryStats, TimeSeries};
//!
//! let mut queue = TimeSeries::new("east approach");
//! queue.push(Tick::new(0), 2.0);
//! queue.push(Tick::new(1), 5.0);
//! assert_eq!(queue.mean(), 3.5);
//!
//! let mut stats = SummaryStats::new();
//! stats.record(97.97);
//! stats.record(102.87);
//! assert_eq!(stats.count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod render;
mod series;
mod summary;
mod trace;
mod waiting;

pub use histogram::Histogram;
pub use render::{ascii_chart, TextTable};
pub use series::TimeSeries;
pub use summary::SummaryStats;
pub use trace::PhaseTrace;
pub use waiting::{VehicleId, WaitingLedger};
