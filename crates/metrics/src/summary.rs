//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Single-pass summary statistics over a stream of samples.
///
/// Uses Welford's online algorithm, so it is numerically stable for long
/// simulations and supports merging partial results from parallel runs.
///
/// # Examples
///
/// ```
/// use utilbp_metrics::SummaryStats;
///
/// let mut s = SummaryStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        SummaryStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (`σ²`), or 0 for fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (Bessel-corrected), or 0 for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Appends the accumulator to a checkpoint stream, bit-exactly
    /// (floats via `to_bits`, so a restored accumulator continues the
    /// identical floating-point trajectory).
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push(self.count);
        writer.push_f64(self.mean);
        writer.push_f64(self.m2);
        writer.push_f64(self.min);
        writer.push_f64(self.max);
    }

    /// Reads an accumulator written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`StateError`](utilbp_core::state::StateError) on a truncated
    /// stream.
    pub fn load_state(
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<Self, utilbp_core::state::StateError> {
        Ok(SummaryStats {
            count: reader.take()?,
            mean: reader.take_f64()?,
            m2: reader.take_f64()?,
            min: reader.take_f64()?,
            max: reader.take_f64()?,
        })
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    /// Useful when aggregating per-thread partial statistics.
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_inert() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample_statistics() {
        let mut s = SummaryStats::new();
        s.record(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0, "Bessel needs two samples");
    }

    #[test]
    fn matches_two_pass_computation() {
        let data = [1.5, -2.0, 3.25, 7.0, 0.0, -5.5, 2.125];
        let mut s = SummaryStats::new();
        for &x in &data {
            s.record(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-5.5));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let left = [1.0, 2.0, 3.0, 4.0];
        let right = [10.0, 20.0, 30.0];
        let mut a = SummaryStats::new();
        for &x in &left {
            a.record(x);
        }
        let mut b = SummaryStats::new();
        for &x in &right {
            b.record(x);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut seq = SummaryStats::new();
        for &x in left.iter().chain(&right) {
            seq.record(x);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.population_variance() - seq.population_variance()).abs() < 1e-12);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SummaryStats::new();
        a.record(5.0);
        let before = a;
        a.merge(&SummaryStats::new());
        assert_eq!(a, before);

        let mut empty = SummaryStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
