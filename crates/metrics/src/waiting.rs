//! Per-vehicle queuing-time accounting.
//!
//! The paper's headline metric is the **average queuing time of a vehicle**
//! over the whole network (Fig. 2, Table III). A [`WaitingLedger`] tracks
//! each vehicle from network entry to exit; the *accumulation* of waiting
//! ticks lives with the simulator (each active vehicle carries its own
//! wait accumulator through the hot loop) and is flushed into the ledger
//! once, at journey completion, via [`WaitingLedger::complete`]. Queries
//! that must count vehicles still in the network —
//! [`WaitingLedger::mean_waiting_including_active`] — fold the live
//! accumulators in at query time, so the per-tick step path never touches
//! the ledger for waiting vehicles.

use serde::{Deserialize, Serialize};
use utilbp_core::Tick;

use crate::{Histogram, SummaryStats};

/// Bin width of the waiting-time histogram, in ticks.
const WAIT_HISTOGRAM_BIN: f64 = 10.0;
/// Number of bins (covers 0–600 ticks; longer waits land in overflow).
const WAIT_HISTOGRAM_BINS: usize = 60;

/// Opaque vehicle identifier, unique within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VehicleId(u64);

impl VehicleId {
    /// Creates an id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        VehicleId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "veh{}", self.0)
    }
}

/// Tracks per-vehicle journey times and completed-vehicle waiting
/// statistics across a run.
///
/// Waiting ticks are accumulated *outside* the ledger (the simulators
/// carry one accumulator per active vehicle, updated in the same pass
/// that moves the vehicle) and handed over at [`complete`](Self::complete)
/// time. The ledger itself only needs each active vehicle's entry tick,
/// so entering and completing are O(1) slab operations and nothing in the
/// per-tick hot path writes here.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_metrics::{VehicleId, WaitingLedger};
///
/// let mut ledger = WaitingLedger::new();
/// let v = VehicleId::new(0);
/// ledger.enter(v, Tick::new(10));
/// ledger.complete(v, Tick::new(40), 5);
/// assert_eq!(ledger.completed(), 1);
/// assert_eq!(ledger.waiting_stats().mean(), 5.0);
/// assert_eq!(ledger.journey_stats().mean(), 30.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaitingLedger {
    /// Entry ticks of active vehicles in a dense slab indexed by the raw
    /// [`VehicleId`]. Ids are handed out sequentially by the demand
    /// generators, so the slab stays compact and both `enter` and
    /// `complete` are cache-friendly vector indexing instead of hash
    /// lookups.
    active: Vec<Option<Tick>>,
    /// Number of `Some` entries in `active`.
    active_count: usize,
    waiting: SummaryStats,
    journey: SummaryStats,
    waiting_histogram: Histogram,
}

impl Default for WaitingLedger {
    fn default() -> Self {
        WaitingLedger {
            active: Vec::new(),
            active_count: 0,
            waiting: SummaryStats::new(),
            journey: SummaryStats::new(),
            waiting_histogram: Histogram::new(WAIT_HISTOGRAM_BIN, WAIT_HISTOGRAM_BINS),
        }
    }
}

impl WaitingLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        WaitingLedger::default()
    }

    /// Registers a vehicle entering the network at `tick`.
    ///
    /// Ids are expected to be (roughly) sequential — the slab grows to
    /// the largest raw id seen, so sparse gigantic ids would waste
    /// memory, not break correctness.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vehicle is already active (ids must be
    /// unique per run).
    pub fn enter(&mut self, id: VehicleId, tick: Tick) {
        let slot = id.raw() as usize;
        if slot >= self.active.len() {
            self.active.resize(slot + 1, None);
        }
        let previous = self.active[slot].replace(tick);
        if previous.is_none() {
            self.active_count += 1;
        }
        debug_assert!(previous.is_none(), "vehicle {id} entered twice");
    }

    /// Completes a vehicle's journey at `tick`, folding its journey time
    /// and its externally accumulated `waited` ticks into the run
    /// statistics. Returns `waited` back, or `None` if the id was not
    /// active (unknown ids are ignored).
    pub fn complete(&mut self, id: VehicleId, tick: Tick, waited: u64) -> Option<u64> {
        let entered = self.active.get_mut(id.raw() as usize)?.take()?;
        self.active_count -= 1;
        self.waiting.record(waited as f64);
        self.waiting_histogram.record(waited as f64);
        self.journey
            .record(tick.saturating_since(entered).count() as f64);
        Some(waited)
    }

    /// Number of vehicles that completed their journey.
    pub fn completed(&self) -> u64 {
        self.waiting.count()
    }

    /// Number of vehicles still in the network.
    pub fn active(&self) -> usize {
        self.active_count
    }

    /// Waiting-time statistics over completed vehicles (ticks).
    pub fn waiting_stats(&self) -> SummaryStats {
        self.waiting
    }

    /// Journey-time statistics over completed vehicles (ticks).
    pub fn journey_stats(&self) -> SummaryStats {
        self.journey
    }

    /// Waiting-time distribution over completed vehicles (10-tick bins up
    /// to 600 ticks, then overflow) — means hide the tail that matters.
    pub fn waiting_histogram(&self) -> &Histogram {
        &self.waiting_histogram
    }

    /// Appends the full ledger — the active slab and all completed-run
    /// statistics — to a checkpoint stream.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push_usize(self.active.len());
        for entry in &self.active {
            match entry {
                Some(tick) => {
                    writer.push_bool(true);
                    writer.push(tick.index());
                }
                None => writer.push_bool(false),
            }
        }
        self.waiting.save_state(writer);
        self.journey.save_state(writer);
        self.waiting_histogram.save_state(writer);
    }

    /// Reads a ledger written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`StateError`](utilbp_core::state::StateError) when the stream
    /// is truncated or malformed.
    pub fn load_state(
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<Self, utilbp_core::state::StateError> {
        let len = reader.take_usize()?;
        let mut active = Vec::with_capacity(len);
        let mut active_count = 0;
        for _ in 0..len {
            if reader.take_bool()? {
                active.push(Some(Tick::new(reader.take()?)));
                active_count += 1;
            } else {
                active.push(None);
            }
        }
        Ok(WaitingLedger {
            active,
            active_count,
            waiting: SummaryStats::load_state(reader)?,
            journey: SummaryStats::load_state(reader)?,
            waiting_histogram: Histogram::load_state(reader)?,
        })
    }

    /// Average waiting time including vehicles still in the network — the
    /// estimator used for the paper's "average queuing time of a vehicle
    /// (in the entire network)", which counts every vehicle inserted.
    ///
    /// `active_waits` must yield the current wait accumulator of **every**
    /// active vehicle (one element per vehicle; zeros included) — the
    /// simulators own those accumulators, so this fold happens at query
    /// time instead of costing a ledger write per waiting vehicle per
    /// tick. Vehicles still active contribute their waiting so far;
    /// without this, heavily congested controllers would look *better*
    /// because their stuck vehicles never complete.
    pub fn mean_waiting_including_active<I>(&self, active_waits: I) -> f64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut active_total = 0u64;
        let mut active_n = 0u64;
        for w in active_waits {
            active_total += w;
            active_n += 1;
        }
        debug_assert_eq!(
            active_n as usize, self.active_count,
            "active_waits must yield one accumulator per active vehicle"
        );
        let total = self.waiting.mean() * self.waiting.count() as f64 + active_total as f64;
        let n = self.waiting.count() as f64 + active_n as f64;
        if n == 0.0 {
            0.0
        } else {
            total / n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_accounting() {
        let mut l = WaitingLedger::new();
        let a = VehicleId::new(1);
        let b = VehicleId::new(2);
        l.enter(a, Tick::new(0));
        l.enter(b, Tick::new(5));
        assert_eq!(l.active(), 2);

        assert_eq!(l.complete(a, Tick::new(50), 10), Some(10));
        assert_eq!(l.completed(), 1);
        assert_eq!(l.active(), 1);
        assert_eq!(l.journey_stats().mean(), 50.0);

        assert_eq!(l.complete(b, Tick::new(25), 4), Some(4));
        assert_eq!(l.waiting_stats().mean(), 7.0);
        assert_eq!(l.journey_stats().mean(), 35.0);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut l = WaitingLedger::new();
        assert_eq!(l.complete(VehicleId::new(9), Tick::new(1), 5), None);
        assert_eq!(l.completed(), 0);
    }

    #[test]
    fn active_vehicles_count_toward_snapshot_mean() {
        let mut l = WaitingLedger::new();
        let a = VehicleId::new(1);
        let b = VehicleId::new(2);
        l.enter(a, Tick::new(0));
        l.enter(b, Tick::new(0));
        l.complete(a, Tick::new(20), 10);
        // `b` is still stuck in the network with 30 accumulated ticks.
        assert_eq!(l.waiting_stats().mean(), 10.0, "completed-only mean");
        assert_eq!(l.mean_waiting_including_active([30u64]), 20.0);
    }

    #[test]
    fn empty_ledger_means_are_zero() {
        let l = WaitingLedger::new();
        assert_eq!(l.mean_waiting_including_active(std::iter::empty()), 0.0);
        assert_eq!(l.waiting_stats().mean(), 0.0);
    }

    #[test]
    fn vehicle_id_display() {
        assert_eq!(VehicleId::new(3).to_string(), "veh3");
    }

    #[test]
    fn histogram_tracks_completed_waits() {
        let mut l = WaitingLedger::new();
        for (i, wait) in [5u64, 15, 15, 700].into_iter().enumerate() {
            let v = VehicleId::new(i as u64);
            l.enter(v, Tick::ZERO);
            l.complete(v, Tick::new(1000), wait);
        }
        let h = l.waiting_histogram();
        assert_eq!(h.count(), 4);
        assert_eq!(h.overflow(), 1, "700 ticks exceeds the last bin");
        assert_eq!(h.percentile(50.0), Some(20.0));
    }
}
