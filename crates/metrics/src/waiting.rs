//! Per-vehicle queuing-time accounting.
//!
//! The paper's headline metric is the **average queuing time of a vehicle**
//! over the whole network (Fig. 2, Table III). A [`WaitingLedger`] tracks
//! each vehicle from network entry to exit, accumulating the ticks it spent
//! waiting (queued at an intersection, or stopped below the waiting-speed
//! threshold in the microscopic simulator, matching SUMO's definition).

use serde::{Deserialize, Serialize};
use utilbp_core::Tick;

use crate::{Histogram, SummaryStats};

/// Bin width of the waiting-time histogram, in ticks.
const WAIT_HISTOGRAM_BIN: f64 = 10.0;
/// Number of bins (covers 0–600 ticks; longer waits land in overflow).
const WAIT_HISTOGRAM_BINS: usize = 60;

/// Opaque vehicle identifier, unique within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VehicleId(u64);

impl VehicleId {
    /// Creates an id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        VehicleId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "veh{}", self.0)
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ActiveVehicle {
    entered: Tick,
    waited: u64,
}

/// Tracks per-vehicle waiting and journey times across a run.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_metrics::{VehicleId, WaitingLedger};
///
/// let mut ledger = WaitingLedger::new();
/// let v = VehicleId::new(0);
/// ledger.enter(v, Tick::new(10));
/// ledger.add_wait(v, 3);
/// ledger.add_wait(v, 2);
/// ledger.complete(v, Tick::new(40));
/// assert_eq!(ledger.completed(), 1);
/// assert_eq!(ledger.waiting_stats().mean(), 5.0);
/// assert_eq!(ledger.journey_stats().mean(), 30.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaitingLedger {
    /// Active vehicles in a dense slab indexed by the raw [`VehicleId`].
    /// Ids are handed out sequentially by the demand generators, so the
    /// slab stays compact and the per-tick `add_wait` of every waiting
    /// vehicle is a cache-friendly vector index instead of a hash lookup
    /// — the ledger sits on the simulators' hot path.
    active: Vec<Option<ActiveVehicle>>,
    /// Number of `Some` entries in `active`.
    active_count: usize,
    waiting: SummaryStats,
    journey: SummaryStats,
    waiting_histogram: Histogram,
}

impl Default for WaitingLedger {
    fn default() -> Self {
        WaitingLedger {
            active: Vec::new(),
            active_count: 0,
            waiting: SummaryStats::new(),
            journey: SummaryStats::new(),
            waiting_histogram: Histogram::new(WAIT_HISTOGRAM_BIN, WAIT_HISTOGRAM_BINS),
        }
    }
}

impl WaitingLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        WaitingLedger::default()
    }

    /// Registers a vehicle entering the network at `tick`.
    ///
    /// Ids are expected to be (roughly) sequential — the slab grows to
    /// the largest raw id seen, so sparse gigantic ids would waste
    /// memory, not break correctness.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vehicle is already active (ids must be
    /// unique per run).
    pub fn enter(&mut self, id: VehicleId, tick: Tick) {
        let slot = id.raw() as usize;
        if slot >= self.active.len() {
            self.active.resize(slot + 1, None);
        }
        let previous = self.active[slot].replace(ActiveVehicle {
            entered: tick,
            waited: 0,
        });
        if previous.is_none() {
            self.active_count += 1;
        }
        debug_assert!(previous.is_none(), "vehicle {id} entered twice");
    }

    /// Adds `ticks` of waiting to an active vehicle. Unknown ids are
    /// ignored (the vehicle may have been completed by a racing recorder).
    pub fn add_wait(&mut self, id: VehicleId, ticks: u64) {
        if let Some(Some(v)) = self.active.get_mut(id.raw() as usize) {
            v.waited += ticks;
        }
    }

    /// Completes a vehicle's journey at `tick`, folding its waiting and
    /// journey times into the run statistics. Returns the vehicle's total
    /// waiting ticks, or `None` if the id was not active.
    pub fn complete(&mut self, id: VehicleId, tick: Tick) -> Option<u64> {
        let v = self.active.get_mut(id.raw() as usize)?.take()?;
        self.active_count -= 1;
        self.waiting.record(v.waited as f64);
        self.waiting_histogram.record(v.waited as f64);
        self.journey
            .record(tick.saturating_since(v.entered).count() as f64);
        Some(v.waited)
    }

    /// Number of vehicles that completed their journey.
    pub fn completed(&self) -> u64 {
        self.waiting.count()
    }

    /// Number of vehicles still in the network.
    pub fn active(&self) -> usize {
        self.active_count
    }

    /// Waiting-time statistics over completed vehicles (ticks).
    pub fn waiting_stats(&self) -> SummaryStats {
        self.waiting
    }

    /// Journey-time statistics over completed vehicles (ticks).
    pub fn journey_stats(&self) -> SummaryStats {
        self.journey
    }

    /// Waiting-time distribution over completed vehicles (10-tick bins up
    /// to 600 ticks, then overflow) — means hide the tail that matters.
    pub fn waiting_histogram(&self) -> &Histogram {
        &self.waiting_histogram
    }

    /// Average waiting time including vehicles still in the network — the
    /// estimator used for the paper's "average queuing time of a vehicle
    /// (in the entire network)", which counts every vehicle inserted.
    ///
    /// Vehicles still active contribute their waiting so far; without this,
    /// heavily congested controllers would look *better* because their
    /// stuck vehicles never complete.
    pub fn mean_waiting_including_active(&self) -> f64 {
        let total = self.waiting.mean() * self.waiting.count() as f64
            + self
                .active
                .iter()
                .flatten()
                .map(|v| v.waited as f64)
                .sum::<f64>();
        let n = self.waiting.count() as f64 + self.active_count as f64;
        if n == 0.0 {
            0.0
        } else {
            total / n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_accounting() {
        let mut l = WaitingLedger::new();
        let a = VehicleId::new(1);
        let b = VehicleId::new(2);
        l.enter(a, Tick::new(0));
        l.enter(b, Tick::new(5));
        assert_eq!(l.active(), 2);

        l.add_wait(a, 10);
        l.add_wait(b, 4);
        assert_eq!(l.complete(a, Tick::new(50)), Some(10));
        assert_eq!(l.completed(), 1);
        assert_eq!(l.active(), 1);
        assert_eq!(l.journey_stats().mean(), 50.0);

        assert_eq!(l.complete(b, Tick::new(25)), Some(4));
        assert_eq!(l.waiting_stats().mean(), 7.0);
        assert_eq!(l.journey_stats().mean(), 35.0);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut l = WaitingLedger::new();
        l.add_wait(VehicleId::new(9), 5);
        assert_eq!(l.complete(VehicleId::new(9), Tick::new(1)), None);
        assert_eq!(l.completed(), 0);
    }

    #[test]
    fn active_vehicles_count_toward_snapshot_mean() {
        let mut l = WaitingLedger::new();
        let a = VehicleId::new(1);
        let b = VehicleId::new(2);
        l.enter(a, Tick::new(0));
        l.enter(b, Tick::new(0));
        l.add_wait(a, 10);
        l.complete(a, Tick::new(20));
        l.add_wait(b, 30); // still stuck in the network
        assert_eq!(l.waiting_stats().mean(), 10.0, "completed-only mean");
        assert_eq!(l.mean_waiting_including_active(), 20.0);
    }

    #[test]
    fn empty_ledger_means_are_zero() {
        let l = WaitingLedger::new();
        assert_eq!(l.mean_waiting_including_active(), 0.0);
        assert_eq!(l.waiting_stats().mean(), 0.0);
    }

    #[test]
    fn vehicle_id_display() {
        assert_eq!(VehicleId::new(3).to_string(), "veh3");
    }

    #[test]
    fn histogram_tracks_completed_waits() {
        let mut l = WaitingLedger::new();
        for (i, wait) in [5u64, 15, 15, 700].into_iter().enumerate() {
            let v = VehicleId::new(i as u64);
            l.enter(v, Tick::ZERO);
            l.add_wait(v, wait);
            l.complete(v, Tick::new(1000));
        }
        let h = l.waiting_histogram();
        assert_eq!(h.count(), 4);
        assert_eq!(h.overflow(), 1, "700 ticks exceeds the last bin");
        assert_eq!(h.percentile(50.0), Some(20.0));
    }
}
