//! Demand generation over arbitrary [`Network`]s with time-varying rates,
//! surge events, and closure-aware route choice.
//!
//! [`NetworkDemand`] is the topology-agnostic sibling of
//! [`utilbp_netgen::DemandGenerator`]: one exponential clock per boundary
//! entry, base rates from the network's [`NetEntry`]s, a piecewise-constant
//! [`RateSchedule`] multiplier on top, plus a runtime surge multiplier the
//! scenario engine drives from the event timeline. Routes are sampled from
//! each entry's precomputed weighted [`RouteOption`]s — sampling clones an
//! `Arc`, so injection is allocation-free — and options through closed
//! roads are excluded (re-normalizing the remaining weights), which is how
//! new traffic *reroutes around* a closure. A vehicle whose every route is
//! blocked (e.g. its entry road itself is closed) is suppressed and
//! counted, modeling drivers who never enter the closed area.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utilbp_core::Tick;
use utilbp_metrics::VehicleId;
use utilbp_netgen::{Arrival, Network, RoadId};

use crate::spec::RateSchedule;

/// Seeded, deterministic, closure-aware arrival generator over a
/// [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkDemand {
    schedule: RateSchedule,
    dt_seconds: f64,
    /// Absolute time (seconds) of the next arrival per entry.
    clocks: Vec<f64>,
    /// Base mean inter-arrival seconds per entry.
    base_mean_s: Vec<f64>,
    /// Runtime surge multiplier (scenario events), on top of the schedule.
    surge: f64,
    /// Closure mask per road.
    closed: Vec<bool>,
    /// Per entry: cumulative weights over the *open* options under the
    /// current closure mask, paired with the option index — rebuilt once
    /// per closure-mask change and cached, so sampling is a binary search
    /// instead of a linear scan of the option list (ring networks with
    /// many spokes have dozens of options per entry).
    cum: Vec<Vec<(f64, u32)>>,
    /// Per entry: total weight of open options (0 = entry fully blocked).
    /// Always the last cumulative weight, kept separate for the O(1)
    /// blocked-entry check.
    open_weight: Vec<f64>,
    rng: SmallRng,
    next_vehicle: u64,
    suppressed: u64,
}

impl NetworkDemand {
    /// Creates a generator for `network`'s entries. The same
    /// `(network, schedule, seed)` triple always produces the same
    /// arrival stream.
    ///
    /// # Panics
    ///
    /// Panics if `dt_seconds` is not strictly positive and finite.
    pub fn new(network: &Network, schedule: RateSchedule, dt_seconds: f64, seed: u64) -> Self {
        assert!(
            dt_seconds.is_finite() && dt_seconds > 0.0,
            "dt_seconds must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let m0 = schedule.multiplier_at(Tick::ZERO);
        let base_mean_s: Vec<f64> = network
            .entries()
            .iter()
            .map(|e| e.base_inter_arrival_s)
            .collect();
        let clocks = base_mean_s
            .iter()
            .map(|&mean| exponential(&mut rng, mean / m0))
            .collect();
        let mut demand = NetworkDemand {
            schedule,
            dt_seconds,
            clocks,
            base_mean_s,
            surge: 1.0,
            closed: vec![false; network.topology().num_roads()],
            cum: vec![Vec::new(); network.num_entries()],
            open_weight: vec![0.0; network.num_entries()],
            rng,
            next_vehicle: 0,
            suppressed: 0,
        };
        demand.rebuild_open_tables(network);
        demand
    }

    /// Rebuilds every entry's cumulative-weight table for the current
    /// closure mask (the weights accumulate in option order, exactly as
    /// the former linear scan did, so sampled choices are unchanged).
    fn rebuild_open_tables(&mut self, network: &Network) {
        for i in 0..network.num_entries() {
            let table = &mut self.cum[i];
            table.clear();
            let mut acc = 0.0;
            for (j, opt) in network.route_options(i).iter().enumerate() {
                if opt.roads.iter().any(|r| self.closed[r.index()]) {
                    continue;
                }
                acc += opt.weight;
                table.push((acc, j as u32));
            }
            self.open_weight[i] = acc;
        }
    }

    /// Vehicles generated so far.
    pub fn generated(&self) -> u64 {
        self.next_vehicle
    }

    /// Would-be arrivals suppressed because every route was blocked by
    /// closures.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Sets the runtime surge multiplier (1.0 = no surge).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn set_surge(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "surge factor must be positive"
        );
        self.surge = factor;
    }

    /// The current surge multiplier.
    pub fn surge(&self) -> f64 {
        self.surge
    }

    /// Marks a road closed/open for *route choice*: options traversing a
    /// closed road are excluded from sampling. (The simulator's own
    /// closure state is separate; the engine keeps both in sync.)
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range for the network.
    pub fn set_road_closed(&mut self, network: &Network, road: RoadId, closed: bool) {
        self.closed[road.index()] = closed;
        self.rebuild_open_tables(network);
    }

    /// Appends the arrivals of mini-slot `[tick, tick+1)` to `arrivals`
    /// (typically a cleared, reused buffer). Must be called with
    /// non-decreasing ticks.
    pub fn poll_into(&mut self, network: &Network, tick: Tick, arrivals: &mut Vec<Arrival>) {
        let window_end = (tick.index() + 1) as f64 * self.dt_seconds;
        let mult = self.schedule.multiplier_at(tick) * self.surge;
        for i in 0..self.clocks.len() {
            let mean = self.base_mean_s[i] / mult;
            while self.clocks[i] < window_end {
                if self.open_weight[i] > 0.0 {
                    let route = self.sample_route(network, i);
                    let vehicle = VehicleId::new(self.next_vehicle);
                    self.next_vehicle += 1;
                    arrivals.push(Arrival {
                        vehicle,
                        tick,
                        route,
                    });
                } else {
                    // Entry unreachable under the closure mask: the
                    // driver never enters (no route draw, so the RNG
                    // stream depends only on arrival times).
                    self.suppressed += 1;
                }
                let gap = exponential(&mut self.rng, mean);
                self.clocks[i] += gap;
            }
        }
    }

    /// Samples an open route of entry `i` by weight: one uniform draw,
    /// one binary search over the cached cumulative table.
    fn sample_route(
        &mut self,
        network: &Network,
        i: usize,
    ) -> std::sync::Arc<utilbp_netgen::Route> {
        let u: f64 = self.rng.gen::<f64>() * self.open_weight[i];
        let j = self.pick_option(i, u);
        std::sync::Arc::clone(&network.route_options(i)[j].route)
    }

    /// Serializes the generator's dynamic state — per-entry arrival
    /// clocks, the surge multiplier, the closure mask, the RNG stream
    /// position, and the id/suppression counters — into a durable word
    /// stream. The cached cumulative-weight tables are derived from the
    /// closure mask and are rebuilt on load.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push_usize(self.clocks.len());
        for &clock in &self.clocks {
            writer.push_f64(clock);
        }
        writer.push_f64(self.surge);
        writer.push_usize(self.closed.len());
        for &closed in &self.closed {
            writer.push_bool(closed);
        }
        for &word in &self.rng.state() {
            writer.push(word);
        }
        writer.push(self.next_vehicle);
        writer.push(self.suppressed);
    }

    /// Restores the state written by [`save_state`](Self::save_state)
    /// into a generator built over the *same* network and schedule; the
    /// restored generator continues the arrival stream bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`](utilbp_core::state::StateError) on a
    /// truncated stream or an entry/road count that does not match this
    /// generator's network.
    pub fn load_state(
        &mut self,
        network: &Network,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        use utilbp_core::state::StateError;
        let entries = reader.take_usize()?;
        if entries != self.clocks.len() {
            return Err(StateError::Invalid {
                what: "demand entry count",
                word: entries as u64,
            });
        }
        for clock in &mut self.clocks {
            *clock = reader.take_f64()?;
        }
        self.surge = reader.take_f64()?;
        let roads = reader.take_usize()?;
        if roads != self.closed.len() {
            return Err(StateError::Invalid {
                what: "demand road count",
                word: roads as u64,
            });
        }
        for closed in &mut self.closed {
            *closed = reader.take_bool()?;
        }
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = reader.take()?;
        }
        self.rng = SmallRng::from_state(state);
        self.next_vehicle = reader.take()?;
        self.suppressed = reader.take()?;
        self.rebuild_open_tables(network);
        Ok(())
    }

    /// The option index whose cumulative-weight interval contains `u`
    /// (the first open option with `u < cum`; the last open option for
    /// the floating-point edge `u ≥ total`, matching the linear scan this
    /// replaced).
    fn pick_option(&self, i: usize, u: f64) -> usize {
        let table = &self.cum[i];
        debug_assert!(!table.is_empty(), "open_weight > 0 implies an open option");
        let k = table.partition_point(|&(c, _)| c <= u).min(table.len() - 1);
        table[k].1 as usize
    }
}

/// Inverse-transform sample of an exponential with the given mean.
fn exponential(rng: &mut SmallRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DemandProfile, RateSchedule};
    use utilbp_core::Ticks;
    use utilbp_netgen::{GridNetwork, GridSpec, Pattern};

    fn network() -> Network {
        Network::from_grid(&GridNetwork::new(GridSpec::paper()), Pattern::II)
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let net = network();
        let mut a = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 9);
        let mut b = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 9);
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        for k in 0..200 {
            buf_a.clear();
            buf_b.clear();
            a.poll_into(&net, Tick::new(k), &mut buf_a);
            b.poll_into(&net, Tick::new(k), &mut buf_b);
            assert_eq!(buf_a, buf_b, "k={k}");
        }
        assert!(a.generated() > 0);
    }

    #[test]
    fn rates_follow_the_schedule() {
        let net = network();
        // 3× multiplier in the second half.
        let schedule =
            RateSchedule::from_segments(vec![(Ticks::new(3000), 1.0), (Ticks::new(3000), 3.0)]);
        let mut demand = NetworkDemand::new(&net, schedule, 1.0, 4);
        let mut halves = [0usize; 2];
        let mut buf = Vec::new();
        for k in 0..6000u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            halves[(k / 3000) as usize] += buf.len();
        }
        let ratio = halves[1] as f64 / halves[0] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.4,
            "3x multiplier must triple arrivals, got {ratio} ({halves:?})"
        );
    }

    #[test]
    fn surge_multiplies_on_top() {
        let net = network();
        let mut demand = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 5);
        let mut buf = Vec::new();
        let mut base = 0usize;
        for k in 0..2000u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            base += buf.len();
        }
        demand.set_surge(4.0);
        assert_eq!(demand.surge(), 4.0);
        let mut surged = 0usize;
        for k in 2000..4000u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            surged += buf.len();
        }
        assert!(
            surged as f64 > base as f64 * 2.5,
            "surge must amplify arrivals: {base} -> {surged}"
        );
    }

    #[test]
    fn closures_reroute_and_entry_closure_suppresses() {
        let net = network();
        let mut demand = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 6);
        // Close an internal road: every sampled route must avoid it.
        let internal = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_internal())
            .unwrap();
        demand.set_road_closed(&net, internal, true);
        let mut buf = Vec::new();
        for k in 0..600u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            for a in &buf {
                let entry_idx = net
                    .entries()
                    .iter()
                    .position(|e| e.road == a.route.entry())
                    .unwrap();
                let opt = net
                    .route_options(entry_idx)
                    .iter()
                    .find(|o| o.route == a.route)
                    .expect("sampled routes come from the option table");
                assert!(
                    !opt.roads.contains(&internal),
                    "routes must avoid the closed road"
                );
            }
        }
        assert_eq!(demand.suppressed(), 0, "alternatives keep every entry open");
        // Close an entry road: its arrivals are suppressed.
        let entry_road = net.entries()[0].road;
        demand.set_road_closed(&net, entry_road, true);
        for k in 600..1200u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            assert!(buf.iter().all(|a| a.route.entry() != entry_road));
        }
        assert!(demand.suppressed() > 0, "closed entry turns drivers away");
        // Reopen: arrivals resume there.
        demand.set_road_closed(&net, entry_road, false);
        demand.set_road_closed(&net, internal, false);
        let mut reopened = false;
        for k in 1200..2400u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            reopened |= buf.iter().any(|a| a.route.entry() == entry_road);
        }
        assert!(reopened);
    }

    #[test]
    fn binary_search_sampling_matches_the_linear_scan() {
        use utilbp_netgen::RingSpec;
        let net = RingSpec::default().build();
        let mut demand = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 3);
        // Reference: the linear scan the cumulative table replaced.
        let linear_pick = |demand: &NetworkDemand, i: usize, u: f64| -> usize {
            let mut acc = 0.0;
            let mut chosen = None;
            for (j, opt) in net.route_options(i).iter().enumerate() {
                if opt.roads.iter().any(|r| demand.closed[r.index()]) {
                    continue;
                }
                acc += opt.weight;
                chosen = Some(j);
                if u < acc {
                    break;
                }
            }
            chosen.expect("an open option exists")
        };
        let closable: Vec<RoadId> = net
            .topology()
            .road_ids()
            .filter(|&r| net.topology().road(r).is_internal())
            .take(2)
            .collect();
        for mask in 0..4u32 {
            for (b, &road) in closable.iter().enumerate() {
                demand.set_road_closed(&net, road, mask & (1 << b) != 0);
            }
            for i in 0..net.num_entries() {
                let total = demand.open_weight[i];
                if total == 0.0 {
                    continue;
                }
                // Sweep the whole weight range including both edges.
                for step in 0..=400 {
                    let u = total * step as f64 / 400.0;
                    assert_eq!(
                        demand.pick_option(i, u),
                        linear_pick(&demand, i, u),
                        "mask {mask}, entry {i}, u {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_stream_matches_pre_table_golden() {
        // Golden captured from the linear-scan implementation on this
        // exact run (ring network, seed 13, closures toggled mid-run,
        // entry closure exercising suppression): the cached
        // cumulative-weight tables must reproduce the identical arrival
        // stream.
        use utilbp_netgen::RingSpec;
        let ring = RingSpec::default().build();
        let mut nd = NetworkDemand::new(&ring, RateSchedule::flat(), 1.0, 13);
        let mut buf = Vec::new();
        let mut checksum = 0u64;
        let closable: Vec<RoadId> = ring
            .topology()
            .road_ids()
            .filter(|&r| ring.topology().road(r).is_internal())
            .take(3)
            .collect();
        for k in 0..1200u64 {
            if k == 300 {
                nd.set_road_closed(&ring, closable[0], true);
            }
            if k == 500 {
                nd.set_road_closed(&ring, closable[1], true);
                nd.set_road_closed(&ring, closable[2], true);
            }
            if k == 800 {
                nd.set_road_closed(&ring, closable[0], false);
            }
            if k == 900 {
                nd.set_road_closed(&ring, ring.entries()[0].road, true);
            }
            if k == 1050 {
                nd.set_road_closed(&ring, ring.entries()[0].road, false);
            }
            buf.clear();
            nd.poll_into(&ring, Tick::new(k), &mut buf);
            for a in &buf {
                checksum = checksum
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(a.route.entry().index() as u64)
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(a.route.len() as u64)
                    .wrapping_add(a.vehicle.raw());
            }
        }
        assert_eq!(nd.generated(), 1690);
        assert_eq!(nd.suppressed(), 15);
        assert_eq!(checksum, 0xbc31026d473e5e5c);
    }

    #[test]
    fn profile_schedules_plug_in() {
        let net = network();
        let schedule = DemandProfile::Pulse {
            from: 100,
            len: 100,
            factor: 5.0,
        }
        .schedule(Ticks::new(400));
        let mut demand = NetworkDemand::new(&net, schedule, 1.0, 11);
        let mut counts = [0usize; 4];
        let mut buf = Vec::new();
        for k in 0..400u64 {
            buf.clear();
            demand.poll_into(&net, Tick::new(k), &mut buf);
            counts[(k / 100) as usize] += buf.len();
        }
        assert!(
            counts[1] as f64 > counts[0] as f64 * 2.0,
            "pulse window must spike: {counts:?}"
        );
        assert!(
            counts[3] < counts[1],
            "post-pulse demand falls back: {counts:?}"
        );
    }
}
