//! Scenario descriptions: topology + demand profile + event timeline.

use serde::{Deserialize, Serialize};
use utilbp_baselines::{ActuationFaultConfig, SensorFaultConfig, WatchdogConfig};
use utilbp_core::{Tick, Ticks};
use utilbp_microsim::Fidelity;
use utilbp_netgen::{
    ArterialSpec, AsymmetricGridSpec, GridNetwork, GridSpec, Network, Pattern, RingSpec, RoadId,
};

// The substrate selector and the replanning policy live in
// `utilbp-substrate` (the plant layer below this crate); re-exported here
// so scenario consumers keep one import path.
pub use utilbp_substrate::{Backend, ReplanPolicy};

/// The network family a scenario runs on. The paper's grid is one variant
/// among the generators of [`utilbp_netgen`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The paper's uniform grid; `pattern` supplies the per-side base
    /// arrival rates (Table II).
    Grid {
        /// Grid parameters.
        spec: GridSpec,
        /// Base arrival pattern.
        pattern: Pattern,
    },
    /// A west–east arterial corridor with side streets.
    Arterial(ArterialSpec),
    /// A ring road with outer and inner spokes.
    Ring(RingSpec),
    /// A grid with asymmetric axes (per-direction lengths/capacities).
    AsymmetricGrid(AsymmetricGridSpec),
}

impl TopologySpec {
    /// Builds the routable network this spec describes.
    pub fn build(&self) -> Network {
        match self {
            TopologySpec::Grid { spec, pattern } => {
                Network::from_grid(&GridNetwork::new(*spec), *pattern)
            }
            TopologySpec::Arterial(spec) => spec.build(),
            TopologySpec::Ring(spec) => spec.build(),
            TopologySpec::AsymmetricGrid(spec) => spec.build(),
        }
    }

    /// A short family label for tables.
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Grid { .. } => "grid",
            TopologySpec::Arterial(_) => "arterial",
            TopologySpec::Ring(_) => "ring",
            TopologySpec::AsymmetricGrid(_) => "asym-grid",
        }
    }

    /// The turning-probability table this topology's routes are weighted
    /// by (the grid uses the paper's Table I) — also what en-route
    /// replanning weighs detours with.
    pub fn turning(&self) -> utilbp_netgen::TurningProbabilities {
        match self {
            TopologySpec::Grid { .. } => utilbp_netgen::TurningProbabilities::PAPER,
            TopologySpec::Arterial(s) => s.turning,
            TopologySpec::Ring(s) => s.turning,
            TopologySpec::AsymmetricGrid(s) => s.turning,
        }
    }
}

/// A piecewise-constant arrival-rate multiplier over time.
///
/// Multiplier `m` at tick `k` scales every entry's base arrival rate: the
/// mean inter-arrival time becomes `base / m`. Past the last segment the
/// final multiplier persists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    segments: Vec<(Ticks, f64)>,
}

impl RateSchedule {
    /// A single flat multiplier of 1.
    pub fn flat() -> Self {
        RateSchedule {
            segments: vec![(Ticks::new(1), 1.0)],
        }
    }

    /// A custom segment sequence.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, a duration is zero, or a multiplier
    /// is not positive and finite.
    pub fn from_segments(segments: Vec<(Ticks, f64)>) -> Self {
        assert!(!segments.is_empty(), "schedule must have segments");
        for &(d, m) in &segments {
            assert!(!d.is_zero(), "segment durations must be positive");
            assert!(m.is_finite() && m > 0.0, "multipliers must be positive");
        }
        RateSchedule { segments }
    }

    /// The segments in order.
    pub fn segments(&self) -> &[(Ticks, f64)] {
        &self.segments
    }

    /// The multiplier active at `tick` (the last segment's persists past
    /// the end).
    pub fn multiplier_at(&self, tick: Tick) -> f64 {
        let mut start = 0u64;
        for &(d, m) in &self.segments {
            let end = start + d.count();
            if tick.index() < end {
                return m;
            }
            start = end;
        }
        self.segments.last().expect("segments are non-empty").1
    }
}

/// A named time-varying demand shape, turned into a [`RateSchedule`] for a
/// given horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DemandProfile {
    /// Stationary demand at the base rates.
    Constant,
    /// A rush-hour surge: the rate ramps from 1× to `peak_factor` in four
    /// steps over `ramp` ticks, holds the peak for `peak` ticks, ramps
    /// back down symmetrically, then stays at 1×.
    RushHour {
        /// Ramp-up (and ramp-down) duration in ticks.
        ramp: u64,
        /// Peak-hold duration in ticks.
        peak: u64,
        /// Rate multiplier at the peak.
        peak_factor: f64,
    },
    /// A demand pulse: 1× until `from`, `factor` for `len` ticks, then 1×.
    Pulse {
        /// Pulse start tick.
        from: u64,
        /// Pulse length in ticks.
        len: u64,
        /// Rate multiplier during the pulse.
        factor: f64,
    },
    /// A compressed day: night lull, morning peak, midday plateau,
    /// evening peak, late-evening lull, scaled to fill the horizon.
    Day {
        /// Rate multiplier at the morning peak (the evening peak is 90%
        /// of it).
        peak_factor: f64,
    },
}

impl DemandProfile {
    /// Materializes the multiplier schedule for a run of `horizon` ticks.
    ///
    /// # Panics
    ///
    /// Panics if the profile parameters are degenerate (zero durations
    /// where a phase is required, non-positive factors) or the horizon is
    /// zero for [`DemandProfile::Day`].
    pub fn schedule(&self, horizon: Ticks) -> RateSchedule {
        match *self {
            DemandProfile::Constant => RateSchedule::flat(),
            DemandProfile::RushHour {
                ramp,
                peak,
                peak_factor,
            } => {
                assert!(ramp >= 4 && peak > 0, "rush hour needs ramp >= 4, peak > 0");
                let mut segments = Vec::new();
                let step = ramp / 4;
                for i in 1..=4u64 {
                    let m = 1.0 + (peak_factor - 1.0) * i as f64 / 4.0;
                    segments.push((Ticks::new(step.max(1)), m));
                }
                segments.push((Ticks::new(peak), peak_factor));
                for i in (1..4u64).rev() {
                    let m = 1.0 + (peak_factor - 1.0) * i as f64 / 4.0;
                    segments.push((Ticks::new(step.max(1)), m));
                }
                segments.push((Ticks::new(1), 1.0));
                RateSchedule::from_segments(segments)
            }
            DemandProfile::Pulse { from, len, factor } => {
                assert!(len > 0, "pulse needs a positive length");
                let mut segments = Vec::new();
                if from > 0 {
                    segments.push((Ticks::new(from), 1.0));
                }
                segments.push((Ticks::new(len), factor));
                segments.push((Ticks::new(1), 1.0));
                RateSchedule::from_segments(segments)
            }
            DemandProfile::Day { peak_factor } => {
                assert!(!horizon.is_zero(), "day profile needs a horizon");
                let h = horizon.count();
                let part = |f: f64| Ticks::new(((h as f64 * f) as u64).max(1));
                RateSchedule::from_segments(vec![
                    (part(0.15), 0.4),
                    (part(0.20), peak_factor),
                    (part(0.30), 1.0),
                    (part(0.20), 0.9 * peak_factor),
                    (part(0.15), 0.5),
                ])
            }
        }
    }

    /// Whether the profile varies over time.
    pub fn is_time_varying(&self) -> bool {
        !matches!(self, DemandProfile::Constant)
    }

    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            DemandProfile::Constant => "constant",
            DemandProfile::RushHour { .. } => "rush-hour",
            DemandProfile::Pulse { .. } => "pulse",
            DemandProfile::Day { .. } => "day",
        }
    }
}

/// One disruption on the scenario timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Close a road to entering traffic at `at`.
    CloseRoad {
        /// The road to close.
        road: RoadId,
        /// The tick the closure takes effect.
        at: Tick,
    },
    /// Reopen a previously closed road at `at`.
    ReopenRoad {
        /// The road to reopen.
        road: RoadId,
        /// The tick the reopening takes effect.
        at: Tick,
    },
    /// Multiply every entry's arrival rate by `factor` during
    /// `[from, until)`.
    Surge {
        /// The rate multiplier.
        factor: f64,
        /// Surge start tick (inclusive).
        from: Tick,
        /// Surge end tick (exclusive).
        until: Tick,
    },
    /// Activate the sensor fault model during `[from, until)` — the
    /// window in which every controller's `FaultySensors` decorator
    /// corrupts readings.
    SensorFault {
        /// The fault model applied while the window is open.
        config: SensorFaultConfig,
        /// Window start tick (inclusive).
        from: Tick,
        /// Window end tick (exclusive).
        until: Tick,
    },
    /// Activate the actuator/comms fault model during `[from, until)` —
    /// the window in which every controller's `FaultyActuation`
    /// decorator corrupts the command path (stuck phases, dropped and
    /// delayed commands).
    ActuationFault {
        /// The fault model applied while the window is open.
        config: ActuationFaultConfig,
        /// Window start tick (inclusive).
        from: Tick,
        /// Window end tick (exclusive).
        until: Tick,
    },
}

/// A complete, serializable scenario: topology family, demand profile,
/// seed, horizon, and disruption events.
///
/// See the crate docs for the "Scenario model" (file format and event
/// semantics); [`crate::parse_scenario`] / [`ScenarioSpec::to_text`]
/// round-trip the text form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The scenario's name (used to select built-ins and label tables).
    pub name: String,
    /// Demand RNG seed.
    pub seed: u64,
    /// Run length in ticks.
    pub horizon: Ticks,
    /// The network family.
    pub topology: TopologySpec,
    /// The demand shape over time.
    pub demand: DemandProfile,
    /// Disruptions, in any order; the engine sorts them by tick.
    pub events: Vec<ScenarioEvent>,
    /// How vehicles already en route react to the live network — closure
    /// events, reopenings, and (under the congestion policy) observed
    /// queue state (default: routes stay fixed at entry).
    pub replan: ReplanPolicy,
    /// Per-intersection watchdog configuration: when set, every
    /// controller is wrapped in a `Degrading` fallback stack that
    /// switches the intersection to fixed-time control while its sensor
    /// stream looks implausible (default: no watchdog, controllers are
    /// exactly the pre-fault-plane stack).
    #[serde(default)]
    pub watchdog: Option<WatchdogConfig>,
    /// Numerical contract of the microscopic car-following phase:
    /// `Exact` (default) is the bit-pinned sequential Krauss update;
    /// `Batched` is the vectorization-friendly kernel with counter-based
    /// dawdle noise — statistically equivalent, not bit-compatible. The
    /// queueing substrate ignores this field. Defaults so existing
    /// scenario files and checkpoints stay valid.
    #[serde(default)]
    pub fidelity: Fidelity,
}

impl ScenarioSpec {
    /// Builds the scenario's network.
    pub fn build_network(&self) -> Network {
        self.topology.build()
    }

    /// Validates the spec against its own network: horizon positive,
    /// event ticks within the horizon, event roads existing and internal
    /// or entry (closing an exit road would strand vehicles in the
    /// network forever), surge factors positive, surge windows
    /// non-overlapping (the engine holds one surge multiplier at a time,
    /// so overlapping windows would silently cancel each other), and at
    /// most one sensor fault window (one decorator config per run).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_against(&self.build_network())
    }

    /// [`validate`](Self::validate) against an already-built network.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found.
    pub fn validate_against(&self, network: &Network) -> Result<(), String> {
        if self.horizon.is_zero() {
            return Err(format!("scenario {}: horizon must be positive", self.name));
        }
        self.replan
            .validate()
            .map_err(|e| format!("scenario {}: {e}", self.name))?;
        let mut fault_windows = 0usize;
        let mut actuation_windows = 0usize;
        for event in &self.events {
            match event {
                ScenarioEvent::CloseRoad { road, at } | ScenarioEvent::ReopenRoad { road, at } => {
                    if road.index() >= network.topology().num_roads() {
                        return Err(format!("scenario {}: unknown road {road}", self.name));
                    }
                    if network.topology().road(*road).is_exit() {
                        return Err(format!(
                            "scenario {}: closing exit road {road} would strand traffic",
                            self.name
                        ));
                    }
                    if at.index() >= self.horizon.count() {
                        return Err(format!(
                            "scenario {}: event at {at} is past the horizon",
                            self.name
                        ));
                    }
                }
                ScenarioEvent::Surge {
                    factor,
                    from,
                    until,
                } => {
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(format!(
                            "scenario {}: surge factor must be positive",
                            self.name
                        ));
                    }
                    if from >= until {
                        return Err(format!("scenario {}: empty surge window", self.name));
                    }
                }
                ScenarioEvent::SensorFault {
                    config,
                    from,
                    until,
                } => {
                    fault_windows += 1;
                    if fault_windows > 1 {
                        return Err(format!(
                            "scenario {}: at most one sensor-fault window is supported",
                            self.name
                        ));
                    }
                    config.validate().map_err(|e| {
                        format!("scenario {}: invalid sensor fault config: {e}", self.name)
                    })?;
                    if from >= until {
                        return Err(format!("scenario {}: empty sensor-fault window", self.name));
                    }
                }
                ScenarioEvent::ActuationFault {
                    config,
                    from,
                    until,
                } => {
                    actuation_windows += 1;
                    if actuation_windows > 1 {
                        return Err(format!(
                            "scenario {}: at most one actuation-fault window is supported",
                            self.name
                        ));
                    }
                    config.validate().map_err(|e| {
                        format!(
                            "scenario {}: invalid actuation fault config: {e}",
                            self.name
                        )
                    })?;
                    if from >= until {
                        return Err(format!(
                            "scenario {}: empty actuation-fault window",
                            self.name
                        ));
                    }
                }
            }
        }
        if let Some(watchdog) = &self.watchdog {
            watchdog
                .validate()
                .map_err(|e| format!("scenario {}: invalid watchdog config: {e}", self.name))?;
        }
        // Surge windows must not overlap: the engine applies one surge
        // multiplier at a time, so a window ending inside another would
        // reset the survivor to 1×.
        let mut surges: Vec<(Tick, Tick)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::Surge { from, until, .. } => Some((*from, *until)),
                _ => None,
            })
            .collect();
        surges.sort();
        for pair in surges.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(format!(
                    "scenario {}: surge windows overlap (one surge multiplier \
                     applies at a time)",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Sets the run length, dropping closure/reopen events the new
    /// horizon no longer covers (validation requires them inside the
    /// horizon; surge and sensor-fault windows may overhang and are
    /// kept). A closure whose reopening is dropped simply stays closed —
    /// the one rule every horizon-trimming caller (CI caps, benches,
    /// tests) must agree on, so it lives here.
    pub fn set_horizon(&mut self, horizon: Ticks) {
        self.horizon = horizon;
        let end = horizon.count();
        self.events.retain(|e| match e {
            ScenarioEvent::CloseRoad { at, .. } | ScenarioEvent::ReopenRoad { at, .. } => {
                at.index() < end
            }
            _ => true,
        });
    }

    /// The sensor-fault window, if the scenario has one.
    pub fn sensor_fault(&self) -> Option<(SensorFaultConfig, Tick, Tick)> {
        self.events.iter().find_map(|e| match e {
            ScenarioEvent::SensorFault {
                config,
                from,
                until,
            } => Some((*config, *from, *until)),
            _ => None,
        })
    }

    /// The actuation-fault window, if the scenario has one.
    pub fn actuation_fault(&self) -> Option<(ActuationFaultConfig, Tick, Tick)> {
        self.events.iter().find_map(|e| match e {
            ScenarioEvent::ActuationFault {
                config,
                from,
                until,
            } => Some((*config, *from, *until)),
            _ => None,
        })
    }

    /// Whether any closure/reopen event is on the timeline.
    pub fn has_closures(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                ScenarioEvent::CloseRoad { .. } | ScenarioEvent::ReopenRoad { .. }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_spec(events: Vec<ScenarioEvent>) -> ScenarioSpec {
        ScenarioSpec {
            name: "test".to_string(),
            seed: 7,
            horizon: Ticks::new(300),
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::II,
            },
            demand: DemandProfile::Constant,
            events,
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        }
    }

    #[test]
    fn rate_schedule_lookup_and_persistence() {
        let s = RateSchedule::from_segments(vec![(Ticks::new(10), 1.0), (Ticks::new(5), 3.0)]);
        assert_eq!(s.multiplier_at(Tick::new(0)), 1.0);
        assert_eq!(s.multiplier_at(Tick::new(9)), 1.0);
        assert_eq!(s.multiplier_at(Tick::new(10)), 3.0);
        assert_eq!(s.multiplier_at(Tick::new(1000)), 3.0, "last persists");
    }

    #[test]
    fn rush_hour_ramps_up_and_down() {
        let p = DemandProfile::RushHour {
            ramp: 100,
            peak: 200,
            peak_factor: 3.0,
        };
        let s = p.schedule(Ticks::new(600));
        assert!(s.multiplier_at(Tick::new(0)) > 1.0);
        assert!(s.multiplier_at(Tick::new(0)) < 3.0);
        assert_eq!(s.multiplier_at(Tick::new(150)), 3.0);
        assert_eq!(s.multiplier_at(Tick::new(599)), 1.0);
        assert!(p.is_time_varying());
    }

    #[test]
    fn pulse_and_day_profiles_shape_the_schedule() {
        let pulse = DemandProfile::Pulse {
            from: 50,
            len: 20,
            factor: 4.0,
        }
        .schedule(Ticks::new(200));
        assert_eq!(pulse.multiplier_at(Tick::new(0)), 1.0);
        assert_eq!(pulse.multiplier_at(Tick::new(55)), 4.0);
        assert_eq!(pulse.multiplier_at(Tick::new(80)), 1.0);

        let day = DemandProfile::Day { peak_factor: 2.0 }.schedule(Ticks::new(1000));
        assert_eq!(day.multiplier_at(Tick::new(0)), 0.4);
        assert_eq!(day.multiplier_at(Tick::new(200)), 2.0);
        assert_eq!(day.multiplier_at(Tick::new(990)), 0.5);
    }

    #[test]
    fn validation_rejects_bad_events() {
        let net = grid_spec(Vec::new()).build_network();
        // Unknown road.
        let bad = grid_spec(vec![ScenarioEvent::CloseRoad {
            road: RoadId::new(10_000),
            at: Tick::new(10),
        }]);
        assert!(bad.validate_against(&net).unwrap_err().contains("unknown"));
        // Exit road.
        let exit = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_exit())
            .unwrap();
        let bad = grid_spec(vec![ScenarioEvent::CloseRoad {
            road: exit,
            at: Tick::new(10),
        }]);
        assert!(bad.validate_against(&net).unwrap_err().contains("strand"));
        // Past the horizon.
        let internal = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_internal())
            .unwrap();
        let bad = grid_spec(vec![ScenarioEvent::CloseRoad {
            road: internal,
            at: Tick::new(10_000),
        }]);
        assert!(bad.validate_against(&net).unwrap_err().contains("horizon"));
        // Two fault windows.
        let fault = |from: u64| ScenarioEvent::SensorFault {
            config: SensorFaultConfig::NONE,
            from: Tick::new(from),
            until: Tick::new(from + 10),
        };
        let bad = grid_spec(vec![fault(0), fault(100)]);
        assert!(bad
            .validate_against(&net)
            .unwrap_err()
            .contains("at most one"));
        // Overlapping surge windows.
        let surge = |from: u64, until: u64| ScenarioEvent::Surge {
            factor: 2.0,
            from: Tick::new(from),
            until: Tick::new(until),
        };
        let bad = grid_spec(vec![surge(0, 100), surge(50, 150)]);
        assert!(bad.validate_against(&net).unwrap_err().contains("overlap"));
        let good = grid_spec(vec![surge(0, 100), surge(100, 150)]);
        good.validate_against(&net)
            .expect("back-to-back surges are fine");
        // A well-formed spec passes.
        let good = grid_spec(vec![
            ScenarioEvent::CloseRoad {
                road: internal,
                at: Tick::new(50),
            },
            ScenarioEvent::ReopenRoad {
                road: internal,
                at: Tick::new(150),
            },
            fault(20),
        ]);
        good.validate_against(&net).expect("valid spec");
        assert!(good.has_closures());
        assert!(good.sensor_fault().is_some());
    }

    #[test]
    fn validation_covers_actuation_and_watchdog() {
        let net = grid_spec(Vec::new()).build_network();
        let actuation = |from: u64| ScenarioEvent::ActuationFault {
            config: ActuationFaultConfig {
                drop: 0.5,
                ..ActuationFaultConfig::NONE
            },
            from: Tick::new(from),
            until: Tick::new(from + 10),
        };
        // One window is fine and discoverable.
        let good = grid_spec(vec![actuation(20)]);
        good.validate_against(&net).expect("one actuation window");
        assert!(good.actuation_fault().is_some());
        // Two windows are rejected.
        let bad = grid_spec(vec![actuation(0), actuation(100)]);
        assert!(bad
            .validate_against(&net)
            .unwrap_err()
            .contains("at most one actuation-fault"));
        // A bad config is rejected.
        let bad = grid_spec(vec![ScenarioEvent::ActuationFault {
            config: ActuationFaultConfig {
                stuck: 0.5,
                stuck_ticks: 0,
                ..ActuationFaultConfig::NONE
            },
            from: Tick::new(0),
            until: Tick::new(10),
        }]);
        assert!(bad
            .validate_against(&net)
            .unwrap_err()
            .contains("invalid actuation fault config"));
        // An empty window is rejected.
        let bad = grid_spec(vec![ScenarioEvent::ActuationFault {
            config: ActuationFaultConfig::NONE,
            from: Tick::new(10),
            until: Tick::new(10),
        }]);
        assert!(bad.validate_against(&net).unwrap_err().contains("empty"));
        // A bad watchdog config is rejected; a sound one passes.
        let mut spec = grid_spec(Vec::new());
        spec.watchdog = Some(WatchdogConfig {
            freeze_ticks: 0,
            ..WatchdogConfig::default()
        });
        assert!(spec
            .validate_against(&net)
            .unwrap_err()
            .contains("invalid watchdog config"));
        spec.watchdog = Some(WatchdogConfig::default());
        spec.validate_against(&net).expect("default watchdog");
    }

    #[test]
    fn topology_specs_build_their_families() {
        for (spec, family, min_entries) in [
            (
                TopologySpec::Grid {
                    spec: GridSpec::paper(),
                    pattern: Pattern::II,
                },
                "grid",
                12,
            ),
            (
                TopologySpec::Arterial(ArterialSpec::default()),
                "arterial",
                12,
            ),
            (TopologySpec::Ring(RingSpec::default()), "ring", 12),
            (
                TopologySpec::AsymmetricGrid(AsymmetricGridSpec::default()),
                "asym-grid",
                12,
            ),
        ] {
            assert_eq!(spec.family(), family);
            let net = spec.build();
            assert!(net.num_entries() >= min_entries, "{family}");
        }
    }
}
