//! Checkpoint/restore types for the scenario engine.
//!
//! A checkpoint is a `utilbp-snapshot` container holding four sections:
//! the engine's structural metadata (backend, execution mode, guard
//! flags, checkpoint policy, recorder shape), the scenario spec in its
//! text form, the plant's full dynamic state, and the engine's own
//! dynamic state (demand cursors, event-timeline position, fault
//! switches, replanning trackers, congestion monitor, telemetry
//! watermarks). [`ScenarioEngine::restore`] rebuilds a fresh engine from
//! the embedded spec and overwrites its dynamic state, after which the
//! restored run continues **bit-identically** to the uninterrupted one —
//! same `ScenarioOutcome`, same telemetry JSONL — on either substrate
//! and under either `Parallelism` mode.
//!
//! [`ScenarioEngine::restore`]: crate::ScenarioEngine::restore

use std::error::Error;
use std::fmt;

use utilbp_core::state::StateError;
use utilbp_snapshot::SnapshotError;

/// Section tag of the engine-structure metadata words.
pub(crate) const TAG_META: u32 = 1;
/// Section tag of the scenario spec text (`ScenarioSpec::to_text`).
pub(crate) const TAG_SPEC: u32 = 2;
/// Section tag of the plant (substrate) state words.
pub(crate) const TAG_PLANT: u32 = 3;
/// Section tag of the engine-side dynamic state words.
pub(crate) const TAG_ENGINE: u32 = 4;
/// Section tag of the telemetry (recorder + watermark) state words;
/// present only when a flight recorder is installed.
pub(crate) const TAG_TELEMETRY: u32 = 5;

/// Periodic checkpoint capture: every `period` ticks (at the tick
/// boundary, before the tick's events apply) the engine snapshots its
/// full state, retains the bytes in a small ring, and — when a recorder
/// is installed — records a `checkpoint` event carrying the snapshot's
/// size and CRC. The policy rides along in the snapshot itself, so a
/// restored run keeps checkpointing on the same cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Ticks between captures (≥ 1). Tick 0 is never captured — the
    /// initial state is reproducible from the spec alone.
    pub period: u64,
}

impl CheckpointPolicy {
    /// A policy capturing every `period` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn every(period: u64) -> Self {
        assert!(period >= 1, "checkpoint period must be at least 1 tick");
        CheckpointPolicy { period }
    }
}

/// Why a checkpoint could not be restored. Restoration never panics on
/// untrusted bytes: container damage surfaces as
/// [`Snapshot`](Self::Snapshot) (bad magic, version skew, truncation,
/// checksum mismatch), semantic damage inside a verified section as a
/// wrapped [`StateError`], and a checkpoint/configuration disagreement
/// as [`Mismatch`](Self::Mismatch).
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The container is malformed, truncated, or corrupted (this also
    /// wraps word-stream [`StateError`]s via `SnapshotError::State`).
    Snapshot(SnapshotError),
    /// The embedded scenario spec failed to parse or validate.
    Spec(String),
    /// The checkpoint was captured under a different engine
    /// configuration than the one offered for restore (backend,
    /// parallelism, or guard flags).
    Mismatch {
        /// Which configuration axis disagreed.
        what: &'static str,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Snapshot(e) => write!(f, "snapshot: {e}"),
            RestoreError::Spec(msg) => write!(f, "embedded spec: {msg}"),
            RestoreError::Mismatch { what } => {
                write!(f, "checkpoint/config mismatch: {what}")
            }
        }
    }
}

impl Error for RestoreError {}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

impl From<StateError> for RestoreError {
    fn from(e: StateError) -> Self {
        RestoreError::Snapshot(SnapshotError::State(e))
    }
}
