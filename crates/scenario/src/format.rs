//! The scenario text format: a line-oriented, diffable description that
//! round-trips through [`parse_scenario`] / [`ScenarioSpec::to_text`].
//!
//! The workspace's `serde` shim does not serialize (it only keeps the
//! derives compiling until the real crate can be vendored), so scenario
//! files use a small hand-rolled format instead:
//!
//! ```text
//! # comments and blank lines are ignored
//! scenario arterial-rush-hour
//! seed 2020
//! horizon 900
//! topology arterial intersections=5 arterial-length=400 ...
//! demand rush-hour ramp=200 peak=200 factor=2.5
//! replan at-next-junction
//! # …or queue-state-driven routing response:
//! # replan congestion period=32 threshold=0.75 hysteresis=0.1
//! event close road=12 at=300
//! event reopen road=12 at=600
//! event surge factor=3 from=100 until=250
//! event sensor-fault from=150 until=450 dropout=0.3 noise=0.1 noise-mag=3 freeze=0.05 \
//!   stuck-at=0.01 stuck-value=0 frozen=0.02
//! # actuator/comms fault windows (the command path, not the sensors):
//! fault actuator from=100 until=400 stuck=0.02 stuck-ticks=40 drop=0.1 delay=0.1 delay-ticks=4
//! fault comms from=100 until=400 drop=0.2 delay=0.1 delay-ticks=4
//! # per-intersection watchdog fallback (omit for no watchdog):
//! watchdog freeze-ticks=24 max-delta=16 recovery-ticks=12
//! # car-following numerical contract (omit for the exact default):
//! fidelity batched
//! ```
//!
//! Every `key=value` argument is optional unless noted; omitted keys take
//! the corresponding spec's default. See the crate docs for the semantics
//! of each event.

use std::collections::HashMap;

use utilbp_baselines::{ActuationFaultConfig, SensorFaultConfig, WatchdogConfig};
use utilbp_core::{Tick, Ticks};
use utilbp_microsim::Fidelity;
use utilbp_netgen::{
    ArterialSpec, AsymmetricGridSpec, GridSpec, Pattern, RingSpec, RoadId, TurningProbabilities,
};

use crate::spec::{DemandProfile, ReplanPolicy, ScenarioEvent, ScenarioSpec, TopologySpec};

/// Parsed `key=value` arguments of one directive line.
struct Args {
    line_no: usize,
    map: HashMap<String, String>,
}

impl Args {
    fn parse(line_no: usize, parts: &[&str]) -> Result<Args, String> {
        let mut map = HashMap::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("line {line_no}: expected key=value, got `{part}`"))?;
            map.insert(k.to_string(), v.to_string());
        }
        Ok(Args { line_no, map })
    }

    /// Errors on any argument no directive consumed — a typo'd key must
    /// not silently fall back to a default.
    fn finish(&self) -> Result<(), String> {
        if self.map.is_empty() {
            return Ok(());
        }
        let mut keys: Vec<&str> = self.map.keys().map(String::as_str).collect();
        keys.sort_unstable();
        Err(format!(
            "line {}: unknown argument(s): {}",
            self.line_no,
            keys.join(", ")
        ))
    }

    fn f64(&mut self, key: &str, default: f64) -> Result<f64, String> {
        match self.map.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("line {}: bad number for {key}: `{v}`", self.line_no)),
        }
    }

    fn u64(&mut self, key: &str, default: u64) -> Result<u64, String> {
        match self.map.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("line {}: bad integer for {key}: `{v}`", self.line_no)),
        }
    }

    fn u32(&mut self, key: &str, default: u32) -> Result<u32, String> {
        let v = self.u64(key, default as u64)?;
        u32::try_from(v)
            .map_err(|_| format!("line {}: {key}={v} exceeds the u32 range", self.line_no))
    }

    fn req_u32(&mut self, key: &str) -> Result<u32, String> {
        let v = self.req_u64(key)?;
        u32::try_from(v)
            .map_err(|_| format!("line {}: {key}={v} exceeds the u32 range", self.line_no))
    }

    fn req_u64(&mut self, key: &str) -> Result<u64, String> {
        self.map
            .remove(key)
            .ok_or_else(|| format!("line {}: missing {key}=", self.line_no))?
            .parse()
            .map_err(|_| format!("line {}: bad integer for {key}", self.line_no))
    }

    fn req_f64(&mut self, key: &str) -> Result<f64, String> {
        self.map
            .remove(key)
            .ok_or_else(|| format!("line {}: missing {key}=", self.line_no))?
            .parse()
            .map_err(|_| format!("line {}: bad number for {key}", self.line_no))
    }

    fn turning(&mut self) -> Result<TurningProbabilities, String> {
        match self.map.remove("turning") {
            None => Ok(TurningProbabilities::PAPER),
            Some(v) => {
                let pairs: Vec<&str> = v.split(',').collect();
                if pairs.len() != 4 {
                    return Err(format!(
                        "line {}: turning= needs 4 right:left pairs",
                        self.line_no
                    ));
                }
                let mut right_left = [(0.0f64, 0.0f64); 4];
                for (i, pair) in pairs.iter().enumerate() {
                    let (r, l) = pair.split_once(':').ok_or_else(|| {
                        format!("line {}: turning pair `{pair}` needs r:l", self.line_no)
                    })?;
                    right_left[i] = (
                        r.parse()
                            .map_err(|_| format!("line {}: bad turning number", self.line_no))?,
                        l.parse()
                            .map_err(|_| format!("line {}: bad turning number", self.line_no))?,
                    );
                }
                TurningProbabilities::new(right_left)
                    .map_err(|e| format!("line {}: {e}", self.line_no))
            }
        }
    }
}

fn render_turning(t: &TurningProbabilities) -> String {
    use utilbp_core::standard::Approach;
    let parts: Vec<String> = Approach::ALL
        .iter()
        .map(|&s| format!("{}:{}", t.right(s), t.left(s)))
        .collect();
    parts.join(",")
}

fn parse_pattern(line_no: usize, v: &str) -> Result<Pattern, String> {
    match v {
        "I" => Ok(Pattern::I),
        "II" => Ok(Pattern::II),
        "III" => Ok(Pattern::III),
        "IV" => Ok(Pattern::IV),
        _ => Err(format!("line {line_no}: unknown pattern `{v}`")),
    }
}

/// Parses a scenario file.
///
/// # Errors
///
/// Returns a message naming the offending line on the first syntax or
/// semantic error. (Structural validation against the built network is
/// separate — see [`ScenarioSpec::validate`].)
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, String> {
    let mut name = None;
    let mut seed = 0u64;
    let mut horizon = None;
    let mut topology = None;
    let mut demand = DemandProfile::Constant;
    let mut events = Vec::new();
    let mut replan = ReplanPolicy::Off;
    let mut watchdog = None;
    let mut fidelity = Fidelity::Exact;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        match directive {
            "scenario" => {
                name = Some(rest.join(" "));
            }
            "seed" => {
                seed = rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: seed needs a value"))?
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad seed"))?;
            }
            "horizon" => {
                let h: u64 = rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: horizon needs a value"))?
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad horizon"))?;
                horizon = Some(Ticks::new(h));
            }
            "topology" => {
                let kind = *rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: topology needs a kind"))?;
                let mut args = Args::parse(line_no, &rest[1..])?;
                topology = Some(parse_topology(line_no, kind, &mut args)?);
                args.finish()?;
            }
            "demand" => {
                let kind = *rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: demand needs a kind"))?;
                let mut args = Args::parse(line_no, &rest[1..])?;
                demand = parse_demand(line_no, kind, &mut args)?;
                args.finish()?;
            }
            "replan" => {
                replan = match rest.first().copied() {
                    Some(kind @ ("off" | "at-next-junction")) => {
                        if rest.len() > 1 {
                            return Err(format!(
                                "line {line_no}: replan {kind} takes no arguments"
                            ));
                        }
                        if kind == "off" {
                            ReplanPolicy::Off
                        } else {
                            ReplanPolicy::AtNextJunction
                        }
                    }
                    Some("congestion") => {
                        let mut args = Args::parse(line_no, &rest[1..])?;
                        let policy = ReplanPolicy::Congestion {
                            period: args.u64("period", 32)?,
                            threshold: args.f64("threshold", 0.75)?,
                            hysteresis: args.f64("hysteresis", 0.1)?,
                        };
                        args.finish()?;
                        policy
                            .validate()
                            .map_err(|e| format!("line {line_no}: {e}"))?;
                        policy
                    }
                    Some(other) => {
                        return Err(format!("line {line_no}: unknown replan policy `{other}`"))
                    }
                    None => return Err(format!("line {line_no}: replan needs a policy")),
                };
            }
            "event" => {
                let kind = *rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: event needs a kind"))?;
                let mut args = Args::parse(line_no, &rest[1..])?;
                events.push(parse_event(line_no, kind, &mut args)?);
                args.finish()?;
            }
            "fault" => {
                let kind = *rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: fault needs a kind"))?;
                let mut args = Args::parse(line_no, &rest[1..])?;
                events.push(parse_fault(line_no, kind, &mut args)?);
                args.finish()?;
            }
            "watchdog" => {
                let d = WatchdogConfig::default();
                let mut args = Args::parse(line_no, &rest)?;
                let config = WatchdogConfig {
                    freeze_ticks: args.u64("freeze-ticks", d.freeze_ticks)?,
                    max_delta: args.u32("max-delta", d.max_delta)?,
                    recovery_ticks: args.u64("recovery-ticks", d.recovery_ticks)?,
                };
                args.finish()?;
                config
                    .validate()
                    .map_err(|e| format!("line {line_no}: {e}"))?;
                watchdog = Some(config);
            }
            "fidelity" => {
                fidelity = match rest.first().copied() {
                    Some("exact") => Fidelity::Exact,
                    Some("batched") => Fidelity::Batched,
                    Some(other) => {
                        return Err(format!("line {line_no}: unknown fidelity `{other}`"))
                    }
                    None => return Err(format!("line {line_no}: fidelity needs a value")),
                };
                if rest.len() > 1 {
                    return Err(format!("line {line_no}: fidelity takes one value"));
                }
            }
            other => return Err(format!("line {line_no}: unknown directive `{other}`")),
        }
    }

    Ok(ScenarioSpec {
        name: name.ok_or("missing `scenario <name>` line")?,
        seed,
        horizon: horizon.ok_or("missing `horizon <ticks>` line")?,
        topology: topology.ok_or("missing `topology` line")?,
        demand,
        events,
        replan,
        watchdog,
        fidelity,
    })
}

fn parse_topology(line_no: usize, kind: &str, args: &mut Args) -> Result<TopologySpec, String> {
    match kind {
        "grid" => {
            let d = GridSpec::default();
            let pattern = match args.map.remove("pattern") {
                None => Pattern::II,
                Some(v) => parse_pattern(line_no, &v)?,
            };
            Ok(TopologySpec::Grid {
                spec: GridSpec {
                    rows: args.u32("rows", d.rows)?,
                    cols: args.u32("cols", d.cols)?,
                    road_length_m: args.f64("length", d.road_length_m)?,
                    capacity: args.u32("capacity", d.capacity)?,
                    service_rate: args.f64("service-rate", d.service_rate)?,
                    free_speed_mps: args.f64("free-speed", d.free_speed_mps)?,
                },
                pattern,
            })
        }
        "arterial" => {
            let d = ArterialSpec::default();
            Ok(TopologySpec::Arterial(ArterialSpec {
                intersections: args.u32("intersections", d.intersections)?,
                arterial_length_m: args.f64("arterial-length", d.arterial_length_m)?,
                arterial_capacity: args.u32("arterial-capacity", d.arterial_capacity)?,
                side_length_m: args.f64("side-length", d.side_length_m)?,
                side_capacity: args.u32("side-capacity", d.side_capacity)?,
                service_rate: args.f64("service-rate", d.service_rate)?,
                arterial_inter_arrival_s: args.f64("arterial-gap", d.arterial_inter_arrival_s)?,
                side_inter_arrival_s: args.f64("side-gap", d.side_inter_arrival_s)?,
                turning: args.turning()?,
            }))
        }
        "ring" => {
            let d = RingSpec::default();
            Ok(TopologySpec::Ring(RingSpec {
                intersections: args.u32("intersections", d.intersections)?,
                ring_length_m: args.f64("ring-length", d.ring_length_m)?,
                ring_capacity: args.u32("ring-capacity", d.ring_capacity)?,
                spoke_length_m: args.f64("spoke-length", d.spoke_length_m)?,
                spoke_capacity: args.u32("spoke-capacity", d.spoke_capacity)?,
                service_rate: args.f64("service-rate", d.service_rate)?,
                outer_inter_arrival_s: args.f64("outer-gap", d.outer_inter_arrival_s)?,
                inner_inter_arrival_s: args.f64("inner-gap", d.inner_inter_arrival_s)?,
                turning: args.turning()?,
            }))
        }
        "asym-grid" => {
            let d = AsymmetricGridSpec::default();
            Ok(TopologySpec::AsymmetricGrid(AsymmetricGridSpec {
                rows: args.u32("rows", d.rows)?,
                cols: args.u32("cols", d.cols)?,
                ew_length_m: args.f64("ew-length", d.ew_length_m)?,
                ew_capacity: args.u32("ew-capacity", d.ew_capacity)?,
                ns_length_m: args.f64("ns-length", d.ns_length_m)?,
                ns_capacity: args.u32("ns-capacity", d.ns_capacity)?,
                service_rate: args.f64("service-rate", d.service_rate)?,
                inter_arrival_s: [
                    args.f64("north-gap", d.inter_arrival_s[0])?,
                    args.f64("east-gap", d.inter_arrival_s[1])?,
                    args.f64("south-gap", d.inter_arrival_s[2])?,
                    args.f64("west-gap", d.inter_arrival_s[3])?,
                ],
                turning: args.turning()?,
            }))
        }
        other => Err(format!("line {line_no}: unknown topology `{other}`")),
    }
}

fn parse_demand(line_no: usize, kind: &str, args: &mut Args) -> Result<DemandProfile, String> {
    match kind {
        "constant" => Ok(DemandProfile::Constant),
        "rush-hour" => Ok(DemandProfile::RushHour {
            ramp: args.u64("ramp", 200)?,
            peak: args.u64("peak", 200)?,
            peak_factor: args.f64("factor", 2.0)?,
        }),
        "pulse" => Ok(DemandProfile::Pulse {
            from: args.u64("from", 0)?,
            len: args.req_u64("len")?,
            factor: args.req_f64("factor")?,
        }),
        "day" => Ok(DemandProfile::Day {
            peak_factor: args.f64("factor", 2.0)?,
        }),
        other => Err(format!("line {line_no}: unknown demand profile `{other}`")),
    }
}

fn parse_event(line_no: usize, kind: &str, args: &mut Args) -> Result<ScenarioEvent, String> {
    match kind {
        "close" => Ok(ScenarioEvent::CloseRoad {
            road: RoadId::new(args.req_u32("road")?),
            at: Tick::new(args.req_u64("at")?),
        }),
        "reopen" => Ok(ScenarioEvent::ReopenRoad {
            road: RoadId::new(args.req_u32("road")?),
            at: Tick::new(args.req_u64("at")?),
        }),
        "surge" => Ok(ScenarioEvent::Surge {
            factor: args.req_f64("factor")?,
            from: Tick::new(args.req_u64("from")?),
            until: Tick::new(args.req_u64("until")?),
        }),
        "sensor-fault" => Ok(ScenarioEvent::SensorFault {
            config: SensorFaultConfig {
                dropout: args.f64("dropout", 0.0)?,
                noise: args.f64("noise", 0.0)?,
                noise_magnitude: args.u32("noise-mag", 0)?,
                freeze: args.f64("freeze", 0.0)?,
                stuck_at: args.f64("stuck-at", 0.0)?,
                stuck_at_value: args.u32("stuck-value", 0)?,
                frozen: args.f64("frozen", 0.0)?,
            },
            from: Tick::new(args.req_u64("from")?),
            until: Tick::new(args.req_u64("until")?),
        }),
        other => Err(format!("line {line_no}: unknown event `{other}`")),
    }
}

/// Parses a `fault` directive: `actuator` takes the full actuation fault
/// model, `comms` the channel-only subset (drop/delay — a comms fault
/// cannot jam the actuator hardware). Both produce the same event; the
/// renderer picks the narrowest directive that preserves the config.
fn parse_fault(line_no: usize, kind: &str, args: &mut Args) -> Result<ScenarioEvent, String> {
    let config = match kind {
        "actuator" => ActuationFaultConfig {
            stuck: args.f64("stuck", 0.0)?,
            stuck_ticks: args.u64("stuck-ticks", 0)?,
            drop: args.f64("drop", 0.0)?,
            delay: args.f64("delay", 0.0)?,
            delay_ticks: args.u64("delay-ticks", 0)?,
        },
        "comms" => ActuationFaultConfig {
            stuck: 0.0,
            stuck_ticks: 0,
            drop: args.f64("drop", 0.0)?,
            delay: args.f64("delay", 0.0)?,
            delay_ticks: args.u64("delay-ticks", 0)?,
        },
        other => Err(format!("line {line_no}: unknown fault kind `{other}`"))?,
    };
    config
        .validate()
        .map_err(|e| format!("line {line_no}: {e}"))?;
    Ok(ScenarioEvent::ActuationFault {
        config,
        from: Tick::new(args.req_u64("from")?),
        until: Tick::new(args.req_u64("until")?),
    })
}

impl ScenarioSpec {
    /// Renders the spec in the scenario text format; the output parses
    /// back to an equal spec.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario {}\n", self.name));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("horizon {}\n", self.horizon.count()));
        match &self.topology {
            TopologySpec::Grid { spec, pattern } => {
                out.push_str(&format!(
                    "topology grid rows={} cols={} pattern={pattern} length={} capacity={} \
                     service-rate={} free-speed={}\n",
                    spec.rows,
                    spec.cols,
                    spec.road_length_m,
                    spec.capacity,
                    spec.service_rate,
                    spec.free_speed_mps,
                ));
            }
            TopologySpec::Arterial(s) => {
                out.push_str(&format!(
                    "topology arterial intersections={} arterial-length={} arterial-capacity={} \
                     side-length={} side-capacity={} service-rate={} arterial-gap={} side-gap={} \
                     turning={}\n",
                    s.intersections,
                    s.arterial_length_m,
                    s.arterial_capacity,
                    s.side_length_m,
                    s.side_capacity,
                    s.service_rate,
                    s.arterial_inter_arrival_s,
                    s.side_inter_arrival_s,
                    render_turning(&s.turning),
                ));
            }
            TopologySpec::Ring(s) => {
                out.push_str(&format!(
                    "topology ring intersections={} ring-length={} ring-capacity={} \
                     spoke-length={} spoke-capacity={} service-rate={} outer-gap={} inner-gap={} \
                     turning={}\n",
                    s.intersections,
                    s.ring_length_m,
                    s.ring_capacity,
                    s.spoke_length_m,
                    s.spoke_capacity,
                    s.service_rate,
                    s.outer_inter_arrival_s,
                    s.inner_inter_arrival_s,
                    render_turning(&s.turning),
                ));
            }
            TopologySpec::AsymmetricGrid(s) => {
                out.push_str(&format!(
                    "topology asym-grid rows={} cols={} ew-length={} ew-capacity={} ns-length={} \
                     ns-capacity={} service-rate={} north-gap={} east-gap={} south-gap={} \
                     west-gap={} turning={}\n",
                    s.rows,
                    s.cols,
                    s.ew_length_m,
                    s.ew_capacity,
                    s.ns_length_m,
                    s.ns_capacity,
                    s.service_rate,
                    s.inter_arrival_s[0],
                    s.inter_arrival_s[1],
                    s.inter_arrival_s[2],
                    s.inter_arrival_s[3],
                    render_turning(&s.turning),
                ));
            }
        }
        match self.demand {
            DemandProfile::Constant => out.push_str("demand constant\n"),
            DemandProfile::RushHour {
                ramp,
                peak,
                peak_factor,
            } => out.push_str(&format!(
                "demand rush-hour ramp={ramp} peak={peak} factor={peak_factor}\n"
            )),
            DemandProfile::Pulse { from, len, factor } => {
                out.push_str(&format!(
                    "demand pulse from={from} len={len} factor={factor}\n"
                ));
            }
            DemandProfile::Day { peak_factor } => {
                out.push_str(&format!("demand day factor={peak_factor}\n"));
            }
        }
        // `off` is the parse default; only the non-default policy needs a
        // line, which keeps pre-replanning scenario files valid as-is.
        if self.replan != ReplanPolicy::Off {
            out.push_str(&format!("replan {}\n", self.replan));
        }
        // No watchdog is the parse default; only an installed watchdog
        // needs a line, which keeps pre-fault-plane files valid as-is.
        if let Some(w) = &self.watchdog {
            out.push_str(&format!(
                "watchdog freeze-ticks={} max-delta={} recovery-ticks={}\n",
                w.freeze_ticks, w.max_delta, w.recovery_ticks,
            ));
        }
        // Exact is the parse default; only the batched contract needs a
        // line, which keeps pre-fidelity files and checkpoints valid.
        if self.fidelity == Fidelity::Batched {
            out.push_str("fidelity batched\n");
        }
        for event in &self.events {
            match event {
                ScenarioEvent::CloseRoad { road, at } => out.push_str(&format!(
                    "event close road={} at={}\n",
                    road.index(),
                    at.index()
                )),
                ScenarioEvent::ReopenRoad { road, at } => out.push_str(&format!(
                    "event reopen road={} at={}\n",
                    road.index(),
                    at.index()
                )),
                ScenarioEvent::Surge {
                    factor,
                    from,
                    until,
                } => out.push_str(&format!(
                    "event surge factor={factor} from={} until={}\n",
                    from.index(),
                    until.index()
                )),
                ScenarioEvent::SensorFault {
                    config,
                    from,
                    until,
                } => out.push_str(&format!(
                    "event sensor-fault from={} until={} dropout={} noise={} noise-mag={} \
                     freeze={} stuck-at={} stuck-value={} frozen={}\n",
                    from.index(),
                    until.index(),
                    config.dropout,
                    config.noise,
                    config.noise_magnitude,
                    config.freeze,
                    config.stuck_at,
                    config.stuck_at_value,
                    config.frozen,
                )),
                ScenarioEvent::ActuationFault {
                    config,
                    from,
                    until,
                } => {
                    // The narrowest directive that preserves the config:
                    // a channel-only fault renders as `fault comms`, so
                    // its round trip cannot resurrect actuator keys.
                    if config.stuck == 0.0 && config.stuck_ticks == 0 {
                        out.push_str(&format!(
                            "fault comms from={} until={} drop={} delay={} delay-ticks={}\n",
                            from.index(),
                            until.index(),
                            config.drop,
                            config.delay,
                            config.delay_ticks,
                        ));
                    } else {
                        out.push_str(&format!(
                            "fault actuator from={} until={} stuck={} stuck-ticks={} drop={} \
                             delay={} delay-ticks={}\n",
                            from.index(),
                            until.index(),
                            config.stuck,
                            config.stuck_ticks,
                            config.drop,
                            config.delay,
                            config.delay_ticks,
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::builtin_scenarios;

    #[test]
    fn builtins_round_trip_through_the_text_format() {
        for spec in builtin_scenarios() {
            let text = spec.to_text();
            let parsed =
                parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(parsed, spec, "round trip of {}", spec.name);
        }
        // The library's replanning builtin pins the `replan` line through
        // the round trip.
        let replanned = builtin_scenarios()
            .into_iter()
            .find(|s| s.replan == ReplanPolicy::AtNextJunction)
            .expect("a replanning builtin exists");
        assert!(replanned.to_text().contains("replan at-next-junction"));
    }

    #[test]
    fn replan_directive_round_trips_and_rejects_unknown_policies() {
        let base = "scenario x\nhorizon 10\ntopology grid\n";
        assert_eq!(
            parse_scenario(base).unwrap().replan,
            ReplanPolicy::Off,
            "omitted replan defaults to off"
        );
        let off = parse_scenario(&format!("{base}replan off\n")).unwrap();
        assert_eq!(off.replan, ReplanPolicy::Off);
        // `off` is the default, so rendering omits the line entirely.
        assert!(!off.to_text().contains("replan"));
        let on = parse_scenario(&format!("{base}replan at-next-junction\n")).unwrap();
        assert_eq!(on.replan, ReplanPolicy::AtNextJunction);
        assert_eq!(parse_scenario(&on.to_text()).unwrap(), on);
        let bad = parse_scenario(&format!("{base}replan sometimes\n"));
        let err = bad.unwrap_err();
        assert!(err.contains("unknown replan policy"), "{err}");
        assert!(err.contains("line 4"), "{err}");
        // A bare `replan` must error like every other value-taking
        // directive, not silently mean `off`.
        let bare = parse_scenario(&format!("{base}replan\n"));
        assert!(bare.unwrap_err().contains("needs a policy"));
        // Argument-free policies reject stray arguments rather than
        // silently dropping them.
        let stray = parse_scenario(&format!("{base}replan off period=5\n"));
        assert!(stray.unwrap_err().contains("takes no arguments"));
    }

    #[test]
    fn congestion_replan_directive_round_trips_and_validates() {
        let base = "scenario x\nhorizon 10\ntopology grid\n";
        let spec = parse_scenario(&format!(
            "{base}replan congestion period=40 threshold=0.6 hysteresis=0.15\n"
        ))
        .unwrap();
        assert_eq!(
            spec.replan,
            ReplanPolicy::Congestion {
                period: 40,
                threshold: 0.6,
                hysteresis: 0.15,
            }
        );
        // Rendering goes through the policy's Display form and parses
        // back to an equal spec.
        let text = spec.to_text();
        assert!(
            text.contains("replan congestion period=40 threshold=0.6 hysteresis=0.15"),
            "{text}"
        );
        assert_eq!(parse_scenario(&text).unwrap(), spec);
        // Omitted keys take the documented defaults.
        let defaulted = parse_scenario(&format!("{base}replan congestion\n")).unwrap();
        assert_eq!(
            defaulted.replan,
            ReplanPolicy::Congestion {
                period: 32,
                threshold: 0.75,
                hysteresis: 0.1,
            }
        );
        assert_eq!(parse_scenario(&defaulted.to_text()).unwrap(), defaulted);

        // Error paths: typo'd keys, non-numeric values, and parameter
        // combinations the policy itself rejects — all with line numbers.
        let typo = parse_scenario(&format!("{base}replan congestion perid=40\n"));
        let err = typo.unwrap_err();
        assert!(
            err.contains("unknown argument") && err.contains("perid"),
            "{err}"
        );
        let err = parse_scenario(&format!("{base}replan congestion threshold=hot\n")).unwrap_err();
        assert!(err.contains("bad number"), "{err}");
        let err = parse_scenario(&format!("{base}replan congestion period=0\n")).unwrap_err();
        assert!(err.contains("period") && err.contains("line 4"), "{err}");
        let err = parse_scenario(&format!(
            "{base}replan congestion threshold=0.5 hysteresis=0.5\n"
        ))
        .unwrap_err();
        assert!(err.contains("hysteresis"), "{err}");
        let err = parse_scenario(&format!("{base}replan congestion threshold=-1\n")).unwrap_err();
        assert!(err.contains("threshold"), "{err}");
    }

    #[test]
    fn fault_and_watchdog_directives_round_trip() {
        let base = "scenario x\nhorizon 500\ntopology grid\n";
        // Full actuator fault.
        let spec = parse_scenario(&format!(
            "{base}fault actuator from=100 until=400 stuck=0.02 stuck-ticks=40 drop=0.1 \
             delay=0.1 delay-ticks=4\n"
        ))
        .unwrap();
        let (config, from, until) = spec.actuation_fault().expect("window parsed");
        assert_eq!(config.stuck, 0.02);
        assert_eq!(config.stuck_ticks, 40);
        assert_eq!(config.drop, 0.1);
        assert_eq!((from.index(), until.index()), (100, 400));
        let text = spec.to_text();
        assert!(text.contains("fault actuator"), "{text}");
        assert_eq!(parse_scenario(&text).unwrap(), spec);
        // Channel-only faults render through the narrower comms form.
        let spec = parse_scenario(&format!(
            "{base}fault comms from=50 until=90 drop=0.25 delay=0.1 delay-ticks=2\n"
        ))
        .unwrap();
        let (config, ..) = spec.actuation_fault().unwrap();
        assert_eq!(config.stuck, 0.0);
        let text = spec.to_text();
        assert!(
            text.contains("fault comms") && !text.contains("stuck"),
            "{text}"
        );
        assert_eq!(parse_scenario(&text).unwrap(), spec);
        // Watchdog line round-trips; omitted means no watchdog.
        let spec = parse_scenario(&format!(
            "{base}watchdog freeze-ticks=30 max-delta=20 recovery-ticks=8\n"
        ))
        .unwrap();
        let w = spec.watchdog.expect("watchdog parsed");
        assert_eq!((w.freeze_ticks, w.max_delta, w.recovery_ticks), (30, 20, 8));
        assert_eq!(parse_scenario(&spec.to_text()).unwrap(), spec);
        assert!(parse_scenario(base).unwrap().watchdog.is_none());
        // Extended sensor-fault keys round-trip too.
        let spec = parse_scenario(&format!(
            "{base}event sensor-fault from=10 until=90 frozen=0.5 stuck-at=0.1 stuck-value=7\n"
        ))
        .unwrap();
        let (config, ..) = spec.sensor_fault().unwrap();
        assert_eq!(config.frozen, 0.5);
        assert_eq!(config.stuck_at, 0.1);
        assert_eq!(config.stuck_at_value, 7);
        assert_eq!(parse_scenario(&spec.to_text()).unwrap(), spec);

        // Error paths: unknown fault kinds, comms rejecting actuator
        // keys, invalid configs and watchdogs — all with line numbers.
        let err = parse_scenario(&format!("{base}fault gremlin from=0 until=9\n")).unwrap_err();
        assert!(
            err.contains("unknown fault kind") && err.contains("line 4"),
            "{err}"
        );
        let err = parse_scenario(&format!(
            "{base}fault comms from=0 until=9 stuck=0.5 stuck-ticks=9\n"
        ))
        .unwrap_err();
        assert!(
            err.contains("unknown argument") && err.contains("stuck"),
            "{err}"
        );
        let err = parse_scenario(&format!("{base}fault actuator from=0 until=9 stuck=0.5\n"))
            .unwrap_err();
        assert!(err.contains("stuck-ticks"), "{err}");
        let err = parse_scenario(&format!("{base}fault comms drop=0.5 until=9\n")).unwrap_err();
        assert!(err.contains("from="), "{err}");
        let err = parse_scenario(&format!("{base}watchdog freeze-ticks=0\n")).unwrap_err();
        assert!(
            err.contains("freeze-ticks") && err.contains("line 4"),
            "{err}"
        );
        let err = parse_scenario(&format!("{base}watchdog max-deltas=3\n")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn fidelity_directive_round_trips_and_rejects_unknown_values() {
        let base = "scenario x\nhorizon 10\ntopology grid\n";
        assert_eq!(
            parse_scenario(base).unwrap().fidelity,
            Fidelity::Exact,
            "omitted fidelity defaults to exact"
        );
        let exact = parse_scenario(&format!("{base}fidelity exact\n")).unwrap();
        assert_eq!(exact.fidelity, Fidelity::Exact);
        // Exact is the default, so rendering omits the line entirely —
        // pre-fidelity scenario files stay byte-stable through a round
        // trip.
        assert!(!exact.to_text().contains("fidelity"));
        let batched = parse_scenario(&format!("{base}fidelity batched\n")).unwrap();
        assert_eq!(batched.fidelity, Fidelity::Batched);
        let text = batched.to_text();
        assert!(text.contains("fidelity batched"), "{text}");
        assert_eq!(parse_scenario(&text).unwrap(), batched);
        // Error paths, all with line numbers: unknown contracts, a bare
        // directive, and stray extra tokens.
        let err = parse_scenario(&format!("{base}fidelity fuzzy\n")).unwrap_err();
        assert!(
            err.contains("unknown fidelity") && err.contains("line 4"),
            "{err}"
        );
        let err = parse_scenario(&format!("{base}fidelity\n")).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = parse_scenario(&format!("{base}fidelity batched exact\n")).unwrap_err();
        assert!(err.contains("one value"), "{err}");
    }

    #[test]
    fn parses_a_hand_written_file() {
        let text = "\
# rush hour on a short corridor
scenario my-corridor
seed 7
horizon 500
topology arterial intersections=3
demand rush-hour ramp=100 peak=100 factor=2.5
event surge factor=2 from=50 until=80
event close road=0 at=100
event reopen road=0 at=200
";
        let spec = parse_scenario(text).expect("file parses");
        assert_eq!(spec.name, "my-corridor");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.horizon.count(), 500);
        assert!(matches!(
            spec.topology,
            TopologySpec::Arterial(ArterialSpec {
                intersections: 3,
                ..
            })
        ));
        assert_eq!(spec.events.len(), 3);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let missing = parse_scenario("seed 1\nhorizon 10\ntopology grid\n");
        assert!(missing.unwrap_err().contains("scenario"));
        let bad = parse_scenario("scenario x\nhorizon 10\ntopology warp\n");
        assert!(bad.unwrap_err().contains("line 3"));
        let bad = parse_scenario("scenario x\nhorizon ten\ntopology grid\n");
        assert!(bad.unwrap_err().contains("line 2"));
        let bad = parse_scenario("scenario x\nhorizon 10\ntopology grid\nevent close road=1\n");
        assert!(bad.unwrap_err().contains("at="));
    }

    #[test]
    fn rejects_unknown_and_out_of_range_arguments() {
        // A typo'd key must not silently fall back to a default.
        let typo = parse_scenario("scenario x\nhorizon 10\ntopology grid row=5\n");
        let err = typo.unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        assert!(err.contains("row"), "{err}");
        let typo =
            parse_scenario("scenario x\nhorizon 10\ntopology grid\ndemand rush-hour facter=3\n");
        assert!(typo.unwrap_err().contains("facter"));
        // Out-of-u32-range ids must error, not wrap.
        let wrap = parse_scenario(
            "scenario x\nhorizon 10\ntopology grid\nevent close road=4294967296 at=1\n",
        );
        assert!(wrap.unwrap_err().contains("u32 range"));
    }
}
