//! The scenario engine: drives a [`TrafficSubstrate`] through a
//! [`ScenarioSpec`]'s demand profile and event timeline.
//!
//! Both simulators are driven through the one plant interface of
//! `utilbp-substrate` — the engine never dispatches on the backend. When
//! the scenario enables a routing-response policy, the engine rewrites
//! the routes of vehicles already en route via [`Replanner`]: closure
//! events divert threatened journeys, reopenings restore previously
//! diverted vehicles onto strictly better open routes, and — under
//! [`ReplanPolicy::Congestion`] — a periodic monitor diverts journeys
//! headed into congested roads, with hysteresis preventing reroute
//! oscillation (see the substrate crate's docs for the routing-response
//! semantics and determinism contract). Periodic congestion checks are
//! interleaved deterministically with the event timeline: each tick
//! applies due events first, then the congestion check when one is due,
//! then demand and the simulation step.
//!
//! The engine is also where the CPS fault plane composes: sensor-fault
//! windows wrap each controller in a gated [`FaultySensors`] decorator,
//! actuation-fault windows add a gated [`FaultyActuation`] decorator on
//! the outside, and a scenario-level watchdog installs a [`Degrading`]
//! monitor (fixed-time fallback) on the inside — so the watchdog judges
//! exactly the sensor stream the controller sees, and the actuator fault
//! distorts whatever the (possibly degraded) controller commands. An
//! [`EngineConfig::guard`] flag wraps the substrate in an
//! [`InvariantGuard`] that re-proves conservation every tick.
//!
//! The engine is also the attachment point of the `utilbp-telemetry`
//! flight recorder: [`ScenarioEngine::enable_recording`] installs a
//! [`FlightRecorder`] capturing tick-stamped events (phase changes,
//! closures, fault windows, watchdog transitions, replans, observe-mode
//! guard violations), [`ScenarioEngine::enable_gauges`] samples queue /
//! pressure / occupancy / backlog gauges on a cadence, and
//! [`ScenarioEngine::enable_profiling`] attributes each tick's
//! wall-clock to pipeline [`Section`]s. All instruments are strictly
//! passive — see the telemetry crate's determinism/passivity contract.

use std::collections::HashSet;

use utilbp_baselines::{
    Degrading, FaultSwitch, FaultyActuation, FaultySensors, FixedTime, WatchdogStats,
};
use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::{Parallelism, SignalController, Tick, Ticks};
use utilbp_metrics::{TimeSeries, VehicleId, WaitingLedger};
use utilbp_microsim::MicroSimConfig;
use utilbp_microsim::PhaseTimings;
use utilbp_microsim::{Fidelity, LaneDiscipline, OutgoingSensor};
use utilbp_netgen::{Arrival, Network, Replanner, RoadId, TurningProbabilities};
use utilbp_snapshot::{crc32, SnapshotReader, SnapshotWriter};
use utilbp_substrate::{
    build_substrate, GuardLog, GuardViolation, InvariantGuard, SubstrateScratch, TrafficSubstrate,
};
use utilbp_telemetry::{
    Event, EventKind, FlightRecorder, GaugeId, GaugeRegistry, NullRecorder, Recorder,
    ReplanTrigger, Section, TickProfiler,
};

use crate::checkpoint::{
    CheckpointPolicy, RestoreError, TAG_ENGINE, TAG_META, TAG_PLANT, TAG_SPEC, TAG_TELEMETRY,
};
use crate::demand::NetworkDemand;
use crate::spec::{Backend, ReplanPolicy, ScenarioEvent, ScenarioSpec};

/// How the engine runs a scenario: substrate, execution mode, and the
/// microscopic parameters (the queueing substrate derives its `Δt` and
/// free-flow speed from them, so both backends simulate the same physical
/// setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The simulation substrate.
    pub backend: Backend,
    /// Execution mode of the sharded simulation phases.
    pub parallelism: Parallelism,
    /// Microscopic parameters.
    pub micro: MicroSimConfig,
    /// When set, the substrate is wrapped in an [`InvariantGuard`] that
    /// re-proves vehicle conservation, sensor consistency, and
    /// closed-road emptiness after every tick, panicking with a
    /// tick-stamped diagnostic on the first violation. Off by default:
    /// the guard costs a per-tick occupancy sweep, and production runs
    /// pay nothing for it when disabled.
    pub guard: bool,
    /// With [`guard`](Self::guard) set, switches the guard to
    /// **observe** mode: violations are logged (and surfaced as
    /// `guard_violation` events when a recorder is installed) instead of
    /// aborting the run. Ignored when the guard is off. Chaos harnesses
    /// keep the default panicking mode; the `trace` replay uses this.
    pub guard_observe: bool,
}

impl EngineConfig {
    /// A config for `backend` with default parameters.
    pub fn new(backend: Backend) -> Self {
        EngineConfig {
            backend,
            parallelism: Parallelism::Serial,
            micro: MicroSimConfig::default(),
            guard: false,
            guard_observe: false,
        }
    }

    /// The same config with the invariant guard enabled.
    pub fn guarded(mut self) -> Self {
        self.guard = true;
        self
    }

    /// The same config with the invariant guard enabled in observe
    /// (non-panicking, event-emitting) mode.
    pub fn observed(mut self) -> Self {
        self.guard = true;
        self.guard_observe = true;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(Backend::Queueing)
    }
}

/// FNV-1a fingerprint of the microscopic parameters, excluding the
/// execution mode (Serial and Rayon are bit-identical, so a checkpoint
/// captured under one may be restored under the other). Stored in every
/// checkpoint's metadata: the physical parameters shape the plant state
/// and the controller inputs, so restoring under different ones would
/// silently break the bit-identical-continuation contract — the
/// fingerprint turns that into a typed `RestoreError::Mismatch`.
fn micro_fingerprint(cfg: &MicroSimConfig) -> u64 {
    let mut w = StateWriter::new();
    w.push_f64(cfg.dt_seconds);
    w.push_f64(cfg.free_speed_mps);
    w.push_f64(cfg.vehicle_length_m);
    w.push_f64(cfg.min_gap_m);
    w.push_f64(cfg.max_accel);
    w.push_f64(cfg.max_decel);
    w.push_f64(cfg.reaction_time_s);
    w.push_f64(cfg.sigma);
    w.push(cfg.crossing_ticks);
    w.push_f64(cfg.detection_range_m);
    w.push_f64(cfg.waiting_speed_mps);
    w.push_f64(cfg.halt_speed_mps);
    w.push(match cfg.outgoing_sensor {
        OutgoingSensor::HaltedWholeRoad => 0,
        OutgoingSensor::PresenceNearJunction => 1,
        OutgoingSensor::Occupancy => 2,
    });
    w.push(match cfg.lane_discipline {
        LaneDiscipline::DedicatedPerMovement => 0,
        LaneDiscipline::SharedMixed => 1,
    });
    w.push_f64(cfg.insertion_speed_mps);
    w.push(cfg.seed);
    // Fidelity shapes every car-following trajectory (batched mode is
    // not bit-compatible with exact), so a checkpoint must not restore
    // across modes.
    w.push(match cfg.fidelity {
        Fidelity::Exact => 0,
        Fidelity::Batched => 1,
    });
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &word in w.words() {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

/// Domain-separation tag for the fault-injection RNG streams: without
/// it, intersection 0's stream would collide with the demand generator
/// and the microscopic road-0 dawdling stream, which are both seeded
/// directly from `ScenarioSpec::seed`.
const FAULT_SEED_DOMAIN: u64 = 0x534E_534F_5246_4C54;

/// Domain-separation tag for the actuation-fault RNG streams — distinct
/// from [`FAULT_SEED_DOMAIN`] so a scenario with both a sensor-fault and
/// an actuation-fault window gives each decorator its own stream, and
/// adding one window never perturbs the other's draws.
const ACTUATION_SEED_DOMAIN: u64 = 0x4143_5455_4154_4F52;

/// A normalized timeline action (events unpacked into on/off edges).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Closed(RoadId, bool),
    Surge(f64),
    Faults(bool),
    ActuationFaults(bool),
}

/// Floor for the congestion weight of an open, uncongested road: keeps a
/// nearly-full (but below-threshold) road admissible rather than rounding
/// its weight to zero.
const MIN_OPEN_ROAD_WEIGHT: f64 = 0.05;

/// The hysteresis-banded congested-road set behind
/// [`ReplanPolicy::Congestion`].
///
/// A road *enters* the set when its occupancy/capacity ratio reaches
/// `threshold` and *leaves* it only when the ratio falls below
/// `threshold - hysteresis`. Occupancy hovering anywhere inside the band
/// therefore never toggles the set — and since the engine only replans
/// when the set is non-empty and a rerouted journey avoids every
/// congested road, a stable set means zero reroute churn.
///
/// # Examples
///
/// ```
/// use utilbp_scenario::CongestionMonitor;
///
/// let mut monitor = CongestionMonitor::new(0.8, 0.2, 1);
/// assert!(!monitor.update(&[0.79]), "below threshold: clear");
/// assert!(monitor.update(&[0.8]), "at threshold: congested");
/// assert!(monitor.update(&[0.65]), "inside the band: still congested");
/// assert!(!monitor.update(&[0.59]), "below the band: clear again");
/// assert_eq!(monitor.transitions(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CongestionMonitor {
    threshold: f64,
    hysteresis: f64,
    congested: Vec<bool>,
    transitions: u64,
}

impl CongestionMonitor {
    /// A monitor over `num_roads` roads, all initially clear.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`ReplanPolicy::validate`]'s rules
    /// (positive finite threshold, hysteresis in `[0, threshold)`).
    pub fn new(threshold: f64, hysteresis: f64, num_roads: usize) -> Self {
        ReplanPolicy::Congestion {
            period: 1,
            threshold,
            hysteresis,
        }
        .validate()
        .expect("monitor parameters are valid");
        CongestionMonitor {
            threshold,
            hysteresis,
            congested: vec![false; num_roads],
            transitions: 0,
        }
    }

    /// Folds one snapshot of per-road occupancy/capacity ratios into the
    /// set; returns whether any road is congested afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is not sized to the road count.
    pub fn update(&mut self, ratios: &[f64]) -> bool {
        assert_eq!(ratios.len(), self.congested.len(), "one ratio per road");
        let mut any = false;
        for (flag, &ratio) in self.congested.iter_mut().zip(ratios) {
            let next = if *flag {
                ratio >= self.threshold - self.hysteresis
            } else {
                ratio >= self.threshold
            };
            if next != *flag {
                self.transitions += 1;
                *flag = next;
            }
            any |= next;
        }
        any
    }

    /// The congested flag of every road, indexed by `RoadId`.
    pub fn congested(&self) -> &[bool] {
        &self.congested
    }

    /// Total per-road state flips since construction — the churn metric
    /// hysteresis is there to bound.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// The aggregate result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub scenario: String,
    /// The substrate it ran on.
    pub backend: Backend,
    /// Vehicles generated by the demand process.
    pub generated: u64,
    /// Would-be arrivals suppressed by closures (no open route).
    pub suppressed: u64,
    /// Vehicles already en route whose routes were rewritten away from a
    /// closed or congested road (0 unless the scenario enables a
    /// routing-response policy).
    pub diverted: u64,
    /// Previously diverted vehicles rewritten back onto a strictly better
    /// open route after a reopening or once the congested set cleared
    /// (0 unless the scenario enables a routing-response policy).
    pub restored: u64,
    /// Vehicles that completed their journey within the horizon.
    pub completed: u64,
    /// Watchdog fallback activations summed over intersections (0 unless
    /// the scenario installs a watchdog).
    pub fallback_activations: u64,
    /// Intersection-ticks spent under the fixed-time fallback, summed
    /// over intersections.
    pub ticks_degraded: u64,
    /// Mean ticks from fallback activation to hysteresis-confirmed
    /// recovery, over completed degradation episodes (0.0 when none
    /// recovered).
    pub recovery_time: f64,
    /// The paper's headline metric: mean queuing time per vehicle in
    /// seconds, counting vehicles still in the network at the horizon.
    pub avg_queuing_time_s: f64,
    /// Mean journey time over completed vehicles, seconds.
    pub mean_journey_s: f64,
    /// Vehicles still waiting outside full/closed boundary entries at the
    /// horizon.
    pub final_backlog: usize,
}

/// The engine's gauge handles: one registry plus the ids of every
/// registered series, so sampling never does a name lookup.
struct Gauges {
    registry: GaugeRegistry,
    backlog: GaugeId,
    congested: GaugeId,
    /// Per-intersection total incoming queue, intersection order.
    queue: Vec<GaugeId>,
    /// Per-intersection peak movement queue (a pressure proxy: the
    /// back-pressure controllers activate the phase serving the longest
    /// movement queues), intersection order.
    pressure: Vec<GaugeId>,
    /// Per-road occupancy, road order.
    occupancy: Vec<GaugeId>,
}

/// The engine's observability state. All of it is strictly passive:
/// with the default [`NullRecorder`] (`active == false`), no profiler,
/// and no gauges, every telemetry branch in the step path is a cold
/// boolean test and the hot loop allocates nothing.
struct Telemetry {
    recorder: Box<dyn Recorder>,
    /// Cached `recorder.enabled()` — the one flag the step path tests.
    active: bool,
    gauges: Option<Gauges>,
    profiler: Option<TickProfiler>,
    /// Last recorded `trace_value` per intersection (empty until the
    /// first recorded tick, which emits every intersection's phase).
    prev_trace: Vec<u16>,
    /// Watchdog counter watermarks, for activation/recovery deltas.
    prev_activations: Vec<u64>,
    prev_recoveries: Vec<u64>,
    /// Reusable buffer for draining the observe-mode guard log.
    violations: Vec<GuardViolation>,
}

impl Telemetry {
    fn off() -> Self {
        Telemetry {
            recorder: Box::new(NullRecorder),
            active: false,
            gauges: None,
            profiler: None,
            prev_trace: Vec::new(),
            prev_activations: Vec::new(),
            prev_recoveries: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Emits a `phase_change` event for every intersection whose
    /// decision differs from the last recorded one (all of them on the
    /// first recorded tick).
    fn record_phases(&mut self, now: Tick, decisions: &[utilbp_core::PhaseDecision]) {
        if self.prev_trace.len() != decisions.len() {
            self.prev_trace.clear();
            self.prev_trace.resize(decisions.len(), u16::MAX);
        }
        for (i, decision) in decisions.iter().enumerate() {
            let value = u16::from(decision.trace_value());
            if self.prev_trace[i] != value {
                self.prev_trace[i] = value;
                self.recorder.record(Event {
                    tick: now,
                    kind: EventKind::PhaseChange {
                        intersection: i as u32,
                        phase: u32::from(value),
                    },
                });
            }
        }
    }

    /// Emits watchdog activation/recovery events from per-intersection
    /// counter deltas since the last recorded tick.
    fn record_watchdogs(&mut self, now: Tick, watchdogs: &[WatchdogStats]) {
        for (i, watchdog) in watchdogs.iter().enumerate() {
            let activations = watchdog.activations();
            for _ in self.prev_activations[i]..activations {
                self.recorder.record(Event {
                    tick: now,
                    kind: EventKind::WatchdogActivated {
                        intersection: i as u32,
                    },
                });
            }
            self.prev_activations[i] = activations;
            let recoveries = watchdog.recoveries();
            for _ in self.prev_recoveries[i]..recoveries {
                self.recorder.record(Event {
                    tick: now,
                    kind: EventKind::WatchdogRecovered {
                        intersection: i as u32,
                    },
                });
            }
            self.prev_recoveries[i] = recoveries;
        }
    }
}

/// Drives one controller family through one scenario on one substrate.
///
/// Construction builds the network from the spec, instantiates one
/// controller per intersection via the factory (wrapping each in a gated
/// [`FaultySensors`] decorator when the scenario has a sensor-fault
/// window), builds the substrate through the shared
/// [`build_substrate`] constructor, and normalizes the event timeline.
/// [`step`](Self::step) applies due events, polls demand, and advances
/// the simulation one mini-slot; [`run_to_end`](Self::run_to_end)
/// finishes the horizon.
///
/// # Examples
///
/// ```
/// use utilbp_core::UtilBp;
/// use utilbp_scenario::{builtin, EngineConfig, ScenarioEngine};
///
/// let spec = builtin("paper-grid").unwrap();
/// let mut engine = ScenarioEngine::new(spec, EngineConfig::default(), &|_| {
///     Box::new(UtilBp::paper())
/// })
/// .unwrap();
/// for _ in 0..60 {
///     engine.step();
/// }
/// assert!(engine.demand_generated() > 0);
/// ```
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    network: Network,
    demand: NetworkDemand,
    substrate: Box<dyn TrafficSubstrate>,
    dt_seconds: f64,
    actions: Vec<(Tick, Action)>,
    cursor: usize,
    fault_switch: FaultSwitch,
    actuation_switch: FaultSwitch,
    /// One stats handle per intersection watchdog (empty unless the spec
    /// installs one).
    watchdogs: Vec<WatchdogStats>,
    now: Tick,
    arrivals: Vec<Arrival>,
    scratch: SubstrateScratch,
    /// Turning probabilities of the scenario's topology (detour weights).
    turning: TurningProbabilities,
    /// Vehicles diverted by en-route replanning so far (closure and
    /// congestion diversions).
    diverted: u64,
    /// Previously diverted vehicles rewritten back after a reopening.
    restored: u64,
    /// The congestion-diversion share of `diverted`.
    congestion_reroutes: u64,
    /// The congestion-clearance share of `restored`.
    congestion_restores: u64,
    /// Congestion-diverted vehicles still on a detour — restored once
    /// the congested set empties. Only membership is ever queried, so
    /// the unordered set cannot perturb determinism.
    congestion_diverted_ids: HashSet<VehicleId>,
    /// Set while a congestion episode is in progress; the restore pass
    /// runs once, at the congested→clear transition, rather than on
    /// every clear periodic check (vehicles whose detour ties their
    /// canonical route would otherwise trigger a futile fleet walk
    /// every period for the rest of the run).
    congestion_restore_pending: bool,
    /// Closure-diverted vehicles still on a detour — the population
    /// reopen-restore considers. Only membership is ever queried, so the
    /// unordered set cannot perturb determinism.
    diverted_ids: HashSet<VehicleId>,
    /// The congested-road set, when the policy is
    /// [`ReplanPolicy::Congestion`].
    monitor: Option<CongestionMonitor>,
    /// Roads introduced by rewritten routes that the original routes did
    /// not traverse (deduplicated, first-seen order).
    detour_roads: Vec<RoadId>,
    /// Reusable per-road scratch: occupancy snapshot, occupancy/capacity
    /// ratios, closure mask, and the congestion weight view.
    occ_scratch: Vec<u32>,
    ratio_scratch: Vec<f64>,
    closed_scratch: Vec<bool>,
    weight_scratch: Vec<f64>,
    /// The flight-recorder / gauge / profiler plane (off by default).
    telemetry: Telemetry,
    /// The observe-mode guard's violation log (only under
    /// [`EngineConfig::guard_observe`]).
    guard_log: Option<GuardLog>,
    /// The configuration the engine was built under — embedded in
    /// checkpoints so restore can reject a mismatched offer, and reused
    /// by [`fork`](Self::fork).
    config: EngineConfig,
    /// Periodic checkpoint capture, when enabled.
    ckpt_policy: Option<CheckpointPolicy>,
    /// The most recent policy-captured checkpoints, oldest first.
    checkpoints: Vec<(Tick, Vec<u8>)>,
}

/// How many policy-captured checkpoints the engine retains; corrupting
/// the newest must still leave fallbacks.
const CHECKPOINT_RETAIN: usize = 4;

impl ScenarioEngine {
    /// Builds an engine for `spec` under `config`, with
    /// `make_controller(i)` producing the controller of intersection `i`.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the spec is inconsistent with
    /// its own network.
    pub fn new(
        spec: ScenarioSpec,
        config: EngineConfig,
        make_controller: &dyn Fn(usize) -> Box<dyn SignalController>,
    ) -> Result<Self, String> {
        let network = spec.build_network();
        spec.validate_against(&network)?;

        let fault_switch = FaultSwitch::new(false);
        let actuation_switch = FaultSwitch::new(false);
        let sensor_fault = spec.sensor_fault();
        let actuation_fault = spec.actuation_fault();
        let n = network.topology().num_intersections();
        let mut watchdogs: Vec<WatchdogStats> = Vec::new();
        let controllers: Vec<Box<dyn SignalController>> = (0..n)
            .map(|i| {
                // Every decorator gets its own fault RNG stream but
                // shares its window switch. The domain tags keep even
                // intersection 0's fault streams disjoint from the
                // demand RNG and the simulators' per-road dawdling
                // streams, which also derive from `spec.seed`.
                let stream = |domain: u64| {
                    (spec.seed ^ domain) ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                };
                // Composition order, inside out: watchdog first (it must
                // judge the same sensor stream the controller consumes),
                // then sensor corruption, then actuation faults on the
                // outermost layer (the plant executes what the actuator
                // delivers, however degraded the decision behind it).
                let mut ctrl: Box<dyn SignalController> = make_controller(i);
                if let Some(watchdog_config) = spec.watchdog {
                    let monitored = Degrading::new(
                        ctrl,
                        FixedTime::new(Ticks::new(15), Ticks::new(4)),
                        watchdog_config,
                    );
                    watchdogs.push(monitored.stats());
                    ctrl = Box::new(monitored);
                }
                if let Some((fault_config, _, _)) = sensor_fault {
                    ctrl = Box::new(FaultySensors::gated(
                        ctrl,
                        fault_config,
                        stream(FAULT_SEED_DOMAIN),
                        fault_switch.clone(),
                    ));
                }
                if let Some((fault_config, _, _)) = actuation_fault {
                    ctrl = Box::new(FaultyActuation::gated(
                        ctrl,
                        fault_config,
                        stream(ACTUATION_SEED_DOMAIN),
                        actuation_switch.clone(),
                    ));
                }
                ctrl
            })
            .collect();

        let mut micro = config.micro;
        micro.parallelism = config.parallelism;
        micro.seed = spec.seed;
        micro.fidelity = spec.fidelity;
        let substrate = build_substrate(
            config.backend,
            network.topology().clone(),
            controllers,
            micro,
        );
        let mut guard_log = None;
        let substrate: Box<dyn TrafficSubstrate> = if config.guard {
            if config.guard_observe {
                let log = GuardLog::new();
                guard_log = Some(log.clone());
                Box::new(InvariantGuard::observing(substrate, log))
            } else {
                Box::new(InvariantGuard::new(substrate))
            }
        } else {
            substrate
        };

        let mut actions: Vec<(Tick, Action)> = Vec::new();
        for event in &spec.events {
            match *event {
                ScenarioEvent::CloseRoad { road, at } => {
                    actions.push((at, Action::Closed(road, true)));
                }
                ScenarioEvent::ReopenRoad { road, at } => {
                    actions.push((at, Action::Closed(road, false)));
                }
                ScenarioEvent::Surge {
                    factor,
                    from,
                    until,
                } => {
                    actions.push((from, Action::Surge(factor)));
                    actions.push((until, Action::Surge(1.0)));
                }
                ScenarioEvent::SensorFault { from, until, .. } => {
                    actions.push((from, Action::Faults(true)));
                    actions.push((until, Action::Faults(false)));
                }
                ScenarioEvent::ActuationFault { from, until, .. } => {
                    actions.push((from, Action::ActuationFaults(true)));
                    actions.push((until, Action::ActuationFaults(false)));
                }
            }
        }
        actions.sort_by_key(|&(tick, _)| tick);

        let demand = NetworkDemand::new(
            &network,
            spec.demand.schedule(spec.horizon),
            micro.dt_seconds,
            spec.seed,
        );

        let turning = spec.topology.turning();
        let monitor = match spec.replan {
            ReplanPolicy::Congestion {
                threshold,
                hysteresis,
                ..
            } => Some(CongestionMonitor::new(
                threshold,
                hysteresis,
                network.topology().num_roads(),
            )),
            _ => None,
        };
        Ok(ScenarioEngine {
            spec,
            network,
            demand,
            substrate,
            dt_seconds: micro.dt_seconds,
            actions,
            cursor: 0,
            fault_switch,
            actuation_switch,
            watchdogs,
            now: Tick::ZERO,
            arrivals: Vec::new(),
            scratch: SubstrateScratch::new(),
            turning,
            diverted: 0,
            restored: 0,
            congestion_reroutes: 0,
            congestion_restores: 0,
            congestion_diverted_ids: HashSet::new(),
            congestion_restore_pending: false,
            diverted_ids: HashSet::new(),
            monitor,
            detour_roads: Vec::new(),
            occ_scratch: Vec::new(),
            ratio_scratch: Vec::new(),
            closed_scratch: Vec::new(),
            weight_scratch: Vec::new(),
            telemetry: Telemetry::off(),
            guard_log,
            config,
            ckpt_policy: None,
            checkpoints: Vec::new(),
        })
    }

    /// The scenario being run.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The network the scenario runs on.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The next tick to be simulated.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Vehicles generated by the demand process so far.
    pub fn demand_generated(&self) -> u64 {
        self.demand.generated()
    }

    /// Would-be arrivals suppressed by closures so far.
    pub fn demand_suppressed(&self) -> u64 {
        self.demand.suppressed()
    }

    /// Vehicles already en route whose routes were rewritten away from a
    /// closed or congested road so far (always 0 under
    /// [`ReplanPolicy::Off`]).
    pub fn vehicles_diverted(&self) -> u64 {
        self.diverted
    }

    /// Previously diverted vehicles rewritten back onto a strictly
    /// better open route — after a reopening, or once the congestion
    /// monitor's congested set emptied — so far.
    pub fn vehicles_restored(&self) -> u64 {
        self.restored
    }

    /// The congestion-diversion share of
    /// [`vehicles_diverted`](Self::vehicles_diverted) — reroutes made by
    /// the periodic congestion monitor rather than a closure event.
    pub fn congestion_reroutes(&self) -> u64 {
        self.congestion_reroutes
    }

    /// Whether the congestion monitor currently flags `road` (always
    /// `false` outside [`ReplanPolicy::Congestion`]).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_congested(&self, road: RoadId) -> bool {
        self.monitor
            .as_ref()
            .map(|m| m.congested()[road.index()])
            .unwrap_or(false)
    }

    /// Congested-set state flips so far (the churn metric hysteresis
    /// bounds; always 0 outside [`ReplanPolicy::Congestion`]).
    pub fn congestion_transitions(&self) -> u64 {
        self.monitor.as_ref().map_or(0, |m| m.transitions())
    }

    /// Roads that rewritten routes traverse which the original routes did
    /// not — the detour set replanning produced so far, in first-seen
    /// order.
    pub fn detour_roads(&self) -> &[RoadId] {
        &self.detour_roads
    }

    /// Previously congestion-diverted vehicles rewritten back onto a
    /// strictly better route after the congested set cleared — the
    /// congestion-clearance share of
    /// [`vehicles_restored`](Self::vehicles_restored).
    pub fn congestion_restores(&self) -> u64 {
        self.congestion_restores
    }

    /// Whether the sensor-fault window is currently open.
    pub fn faults_active(&self) -> bool {
        self.fault_switch.is_active()
    }

    /// Whether the actuation-fault window is currently open.
    pub fn actuation_faults_active(&self) -> bool {
        self.actuation_switch.is_active()
    }

    /// A handle on the sensor-fault window switch. Cloning shares the
    /// underlying flag, so a test (or an external supervisor) can toggle
    /// the window between steps, overriding the timeline.
    pub fn sensor_fault_switch(&self) -> FaultSwitch {
        self.fault_switch.clone()
    }

    /// A handle on the actuation-fault window switch (see
    /// [`sensor_fault_switch`](Self::sensor_fault_switch)).
    pub fn actuation_fault_switch(&self) -> FaultSwitch {
        self.actuation_switch.clone()
    }

    /// One [`WatchdogStats`] handle per intersection, in intersection
    /// order (empty unless the scenario installs a watchdog). This is
    /// the attribution surface: the summed accessors below are derived
    /// from it, and the trace timeline uses it to pin each fallback to
    /// the intersection that degraded.
    pub fn watchdog_stats(&self) -> &[WatchdogStats] {
        &self.watchdogs
    }

    /// Watchdog fallback activations summed over intersections (0
    /// unless the scenario installs a watchdog).
    pub fn fallback_activations(&self) -> u64 {
        self.watchdog_stats().iter().map(|w| w.activations()).sum()
    }

    /// Intersection-ticks spent under the fixed-time fallback so far.
    pub fn ticks_degraded(&self) -> u64 {
        self.watchdog_stats()
            .iter()
            .map(|w| w.degraded_ticks())
            .sum()
    }

    /// Whether any intersection is currently running its fallback.
    pub fn currently_degraded(&self) -> bool {
        self.watchdog_stats().iter().any(|w| w.is_degraded())
    }

    /// Mean ticks from fallback activation to hysteresis-confirmed
    /// recovery, over completed degradation episodes (0.0 when none
    /// recovered).
    pub fn recovery_time(&self) -> f64 {
        let recoveries: u64 = self.watchdog_stats().iter().map(|w| w.recoveries()).sum();
        if recoveries == 0 {
            return 0.0;
        }
        let total: u64 = self
            .watchdog_stats()
            .iter()
            .map(|w| w.recovery_ticks_total())
            .sum();
        total as f64 / recoveries as f64
    }

    /// Installs `recorder` as the engine's event sink, replacing the
    /// previous one (a [`NullRecorder`] by default). Event emission is
    /// gated on `recorder.enabled()`, so installing a `NullRecorder`
    /// returns the step path to its zero-cost recording-off shape.
    /// Watchdog watermarks reset to the *current* counters: events
    /// describe what happens after installation, not history.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.telemetry.active = recorder.enabled();
        self.telemetry.recorder = recorder;
        self.telemetry.prev_trace.clear();
        self.telemetry.prev_activations.clear();
        self.telemetry
            .prev_activations
            .extend(self.watchdogs.iter().map(|w| w.activations()));
        self.telemetry.prev_recoveries.clear();
        self.telemetry
            .prev_recoveries
            .extend(self.watchdogs.iter().map(|w| w.recoveries()));
    }

    /// Installs a [`FlightRecorder`] ring buffer retaining the most
    /// recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn enable_recording(&mut self, capacity: usize) {
        self.set_recorder(Box::new(FlightRecorder::new(capacity)));
    }

    /// The installed [`FlightRecorder`], when the current recorder is
    /// one (`None` under the default [`NullRecorder`]).
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.telemetry.recorder.flight()
    }

    /// The recorded event stream as JSON Lines (empty without a
    /// [`FlightRecorder`]). Byte-deterministic for a fixed scenario.
    pub fn events_jsonl(&self) -> String {
        self.recorder().map(|f| f.to_jsonl()).unwrap_or_default()
    }

    /// Registers the gauge set — backlog depth, congestion-set size,
    /// per-intersection total incoming queue and peak movement-queue
    /// pressure, per-road occupancy — sampled every `every` ticks into
    /// [`TimeSeries`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn enable_gauges(&mut self, every: u64) {
        let topology = self.network.topology();
        let mut registry = GaugeRegistry::new(every);
        let backlog = registry.register("backlog");
        let congested = registry.register("congested_roads");
        let mut queue = Vec::with_capacity(topology.num_intersections());
        let mut pressure = Vec::with_capacity(topology.num_intersections());
        for i in topology.intersection_ids() {
            queue.push(registry.register(format!("queue[i{}]", i.index())));
            pressure.push(registry.register(format!("pressure[i{}]", i.index())));
        }
        let mut occupancy = Vec::with_capacity(topology.num_roads());
        for r in topology.road_ids() {
            occupancy.push(registry.register(format!("occupancy[r{}]", r.index())));
        }
        self.telemetry.gauges = Some(Gauges {
            registry,
            backlog,
            congested,
            queue,
            pressure,
            occupancy,
        });
    }

    /// The sampled gauge series, in registration order (empty unless
    /// [`enable_gauges`](Self::enable_gauges) was called).
    pub fn gauge_series(&self) -> &[TimeSeries] {
        self.telemetry
            .gauges
            .as_ref()
            .map(|g| g.registry.series())
            .unwrap_or(&[])
    }

    /// Turns on the tick-section profiler: subsequent steps run through
    /// the substrate's timed path and attribute wall-clock to
    /// [`Section`]s. Profiling measures the run without influencing it.
    pub fn enable_profiling(&mut self) {
        self.telemetry.profiler = Some(TickProfiler::new());
    }

    /// The profiler, when [`enable_profiling`](Self::enable_profiling)
    /// was called.
    pub fn profiler(&self) -> Option<&TickProfiler> {
        self.telemetry.profiler.as_ref()
    }

    /// Current occupancy of `road` in the running substrate.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_occupancy(&self, road: RoadId) -> u32 {
        self.substrate.road_occupancy(road)
    }

    /// Cumulative vehicles that have entered `road` so far in the running
    /// substrate.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_entered(&self, road: RoadId) -> u64 {
        self.substrate.road_entered(road)
    }

    /// Vehicles waiting outside boundary entries.
    pub fn backlog_len(&self) -> usize {
        self.substrate.backlog_len()
    }

    /// Per-vehicle journey accounting of the running substrate (completed
    /// vehicles; see [`mean_waiting_including_active`](Self::mean_waiting_including_active)
    /// for the headline metric counting active vehicles).
    pub fn ledger(&self) -> &WaitingLedger {
        self.substrate.ledger()
    }

    /// Mean waiting ticks per vehicle including vehicles still in the
    /// network, folded from the substrate's live wait accumulators.
    pub fn mean_waiting_including_active(&self) -> f64 {
        self.substrate.mean_waiting_including_active()
    }

    /// Applies due events, runs the periodic congestion check when one is
    /// due, polls demand, and simulates one mini-slot. The order is fixed
    /// — events, then the congestion check, then demand and the step — so
    /// periodic replans interleave deterministically with the timeline.
    pub fn step(&mut self) {
        let now = self.now;
        let recording = self.telemetry.active;
        // Periodic checkpoint capture, at the tick boundary before the
        // tick's events apply. The snapshot is taken *before* its own
        // `checkpoint` event is recorded, so restoring it and re-running
        // this step re-captures a byte-identical snapshot and re-records
        // the identical event — resumed telemetry stays byte-equal to
        // the uninterrupted stream.
        if let Some(policy) = self.ckpt_policy {
            if now.index() > 0 && now.index().is_multiple_of(policy.period) {
                let bytes = self.checkpoint();
                if recording {
                    self.telemetry.recorder.record(Event {
                        tick: now,
                        kind: EventKind::Checkpoint {
                            bytes: bytes.len() as u64,
                            crc: crc32(&bytes),
                        },
                    });
                }
                self.checkpoints.push((now, bytes));
                if self.checkpoints.len() > CHECKPOINT_RETAIN {
                    self.checkpoints.remove(0);
                }
            }
        }
        while self.cursor < self.actions.len() && self.actions[self.cursor].0 <= now {
            let (_, action) = self.actions[self.cursor];
            self.cursor += 1;
            match action {
                Action::Closed(road, closed) => {
                    self.substrate.set_road_closed(road, closed);
                    self.demand.set_road_closed(&self.network, road, closed);
                    if recording {
                        let road = road.index() as u32;
                        let kind = if closed {
                            EventKind::RoadClosed { road }
                        } else {
                            EventKind::RoadReopened { road }
                        };
                        self.telemetry.recorder.record(Event { tick: now, kind });
                    }
                    if self.spec.replan.responds_to_closures() {
                        let before = (self.diverted, self.restored);
                        let start = self
                            .telemetry
                            .profiler
                            .as_ref()
                            .map(|_| std::time::Instant::now());
                        if closed {
                            self.divert_after_closure();
                        } else {
                            self.restore_after_reopen();
                        }
                        if let (Some(profiler), Some(start)) =
                            (self.telemetry.profiler.as_mut(), start)
                        {
                            profiler.record(Section::Replan, start.elapsed().as_secs_f64());
                        }
                        if recording {
                            self.telemetry.recorder.record(Event {
                                tick: now,
                                kind: EventKind::Replan {
                                    trigger: if closed {
                                        ReplanTrigger::Closure
                                    } else {
                                        ReplanTrigger::Reopen
                                    },
                                    diverted: self.diverted - before.0,
                                    restored: self.restored - before.1,
                                },
                            });
                        }
                    }
                }
                Action::Surge(factor) => {
                    self.demand.set_surge(factor);
                    if recording {
                        self.telemetry.recorder.record(Event {
                            tick: now,
                            kind: EventKind::Surge { factor },
                        });
                    }
                }
                Action::Faults(active) => {
                    self.fault_switch.set_active(active);
                    if recording {
                        self.telemetry.recorder.record(Event {
                            tick: now,
                            kind: EventKind::SensorFaultWindow { active },
                        });
                    }
                }
                Action::ActuationFaults(active) => {
                    self.actuation_switch.set_active(active);
                    if recording {
                        self.telemetry.recorder.record(Event {
                            tick: now,
                            kind: EventKind::ActuationFaultWindow { active },
                        });
                    }
                }
            }
        }
        if let ReplanPolicy::Congestion { period, .. } = self.spec.replan {
            // Skip tick 0: the network is empty before the first step.
            if now.index() > 0 && now.index().is_multiple_of(period) {
                let before_reroutes = self.congestion_reroutes;
                let before_restores = self.congestion_restores;
                let start = self
                    .telemetry
                    .profiler
                    .as_ref()
                    .map(|_| std::time::Instant::now());
                self.congestion_check();
                if let (Some(profiler), Some(start)) = (self.telemetry.profiler.as_mut(), start) {
                    profiler.record(Section::Monitor, start.elapsed().as_secs_f64());
                }
                if recording {
                    // Periodic checks mostly find nothing; only record
                    // the passes that actually rewrote a route.
                    let rerouted = self.congestion_reroutes - before_reroutes;
                    if rerouted > 0 {
                        self.telemetry.recorder.record(Event {
                            tick: now,
                            kind: EventKind::Replan {
                                trigger: ReplanTrigger::Congestion,
                                diverted: rerouted,
                                restored: 0,
                            },
                        });
                    }
                    let restored = self.congestion_restores - before_restores;
                    if restored > 0 {
                        self.telemetry.recorder.record(Event {
                            tick: now,
                            kind: EventKind::Replan {
                                trigger: ReplanTrigger::CongestionCleared,
                                diverted: 0,
                                restored,
                            },
                        });
                    }
                }
            }
        }
        self.arrivals.clear();
        self.demand
            .poll_into(&self.network, now, &mut self.arrivals);
        if self.telemetry.profiler.is_some() {
            let mut timings = PhaseTimings::default();
            {
                let decisions = self.substrate.step_into_timed(
                    &mut self.arrivals,
                    &mut self.scratch,
                    &mut timings,
                );
                if recording {
                    self.telemetry.record_phases(now, decisions);
                }
            }
            let profiler = self
                .telemetry
                .profiler
                .as_mut()
                .expect("profiler installed");
            profiler.record(Section::Decide, timings.decide);
            profiler.record(Section::CarFollowing, timings.car_following);
            profiler.record(Section::Landings, timings.landings);
            profiler.record(Section::Waiting, timings.waiting);
        } else {
            let decisions = self
                .substrate
                .step_into(&mut self.arrivals, &mut self.scratch);
            if recording {
                self.telemetry.record_phases(now, decisions);
            }
        }
        if recording {
            self.telemetry.record_watchdogs(now, &self.watchdogs);
            self.drain_guard_log();
        }
        self.sample_gauges(now);
        self.now = now.next();
    }

    /// Moves observe-mode guard violations into the recorder as
    /// tick-stamped `guard_violation` events.
    fn drain_guard_log(&mut self) {
        let Some(log) = &self.guard_log else {
            return;
        };
        self.telemetry.violations.clear();
        log.drain_into(&mut self.telemetry.violations);
        for violation in self.telemetry.violations.drain(..) {
            self.telemetry.recorder.record(Event {
                tick: Tick::new(violation.tick),
                kind: EventKind::GuardViolation {
                    check: violation.check.to_string(),
                    message: violation.message,
                },
            });
        }
    }

    /// Pushes one sample per registered gauge when the cadence is due.
    fn sample_gauges(&mut self, now: Tick) {
        let Some(gauges) = self.telemetry.gauges.as_mut() else {
            return;
        };
        if !gauges.registry.due(now) {
            return;
        }
        let substrate = &self.substrate;
        let topology = self.network.topology();
        gauges
            .registry
            .sample(gauges.backlog, now, substrate.backlog_len() as f64);
        let congested = self
            .monitor
            .as_ref()
            .map_or(0, |m| m.congested().iter().filter(|&&c| c).count());
        gauges
            .registry
            .sample(gauges.congested, now, congested as f64);
        for (k, i) in topology.intersection_ids().enumerate() {
            let layout = topology.intersection(i).layout();
            let queue: u32 = layout
                .incoming_ids()
                .map(|arm| substrate.incoming_queue_len(i, arm))
                .sum();
            gauges
                .registry
                .sample(gauges.queue[k], now, f64::from(queue));
            let pressure: u32 = layout
                .link_ids()
                .map(|link| substrate.movement_queue_len(i, link))
                .max()
                .unwrap_or(0);
            gauges
                .registry
                .sample(gauges.pressure[k], now, f64::from(pressure));
        }
        substrate.occupancy_snapshot(&mut self.occ_scratch);
        for (k, &occ) in self.occ_scratch.iter().enumerate() {
            gauges
                .registry
                .sample(gauges.occupancy[k], now, f64::from(occ));
        }
    }

    /// Refreshes the reusable closure-mask scratch from the substrate —
    /// the single owner of closure state; routing-response passes are
    /// rare, so rebuilding on demand beats keeping a copy in lockstep.
    fn refresh_closed_mask(&mut self) {
        let (mask, network, substrate) = (&mut self.closed_scratch, &self.network, &self.substrate);
        mask.clear();
        mask.extend(
            network
                .topology()
                .road_ids()
                .map(|r| substrate.road_closed(r)),
        );
    }

    /// Folds a planner's per-pass results into the engine counters.
    fn absorb_planner(&mut self, diverted: u64, restored: u64, detours: &[RoadId]) {
        self.diverted += diverted;
        self.restored += restored;
        for &road in detours {
            if !self.detour_roads.contains(&road) {
                self.detour_roads.push(road);
            }
        }
    }

    /// Rewrites the routes of vehicles whose remaining journey enters a
    /// closed road, remembering who diverted so a later reopening can
    /// restore them (serial, draws no randomness — see the substrate
    /// crate's routing-response contract).
    fn divert_after_closure(&mut self) {
        self.refresh_closed_mask();
        let mut planner =
            Replanner::new(self.network.topology(), &self.turning, &self.closed_scratch);
        let ids = &mut self.diverted_ids;
        self.substrate.replan_routes(&mut |id, route, fixed| {
            let new_route = planner.replan(route, fixed)?;
            ids.insert(id);
            Some(new_route)
        });
        let (diverted, detours) = (planner.diverted(), planner.detour_roads().to_vec());
        self.absorb_planner(diverted, 0, &detours);
    }

    /// After a reopening: restores previously diverted vehicles whose
    /// detour is now strictly dominated by an open continuation, and —
    /// since the reopened road may unlock a detour around a *different*,
    /// still-closed road — offers everyone else a closure diversion. The
    /// tracked diverted set is rebuilt from the walk, so completed
    /// vehicles fall out of it.
    fn restore_after_reopen(&mut self) {
        self.refresh_closed_mask();
        let mut planner =
            Replanner::new(self.network.topology(), &self.turning, &self.closed_scratch);
        let ids = &mut self.diverted_ids;
        let mut still: HashSet<VehicleId> = HashSet::new();
        self.substrate.replan_routes(&mut |id, route, fixed| {
            if ids.contains(&id) {
                match planner.restore(route, fixed) {
                    // Restored: the vehicle leaves the tracked set.
                    Some(new_route) => Some(new_route),
                    None => {
                        still.insert(id);
                        None
                    }
                }
            } else {
                let new_route = planner.replan(route, fixed)?;
                still.insert(id);
                Some(new_route)
            }
        });
        *ids = still;
        let (diverted, restored, detours) = (
            planner.diverted(),
            planner.restored(),
            planner.detour_roads().to_vec(),
        );
        self.absorb_planner(diverted, restored, &detours);
    }

    /// One periodic congestion check: snapshot occupancy, fold the
    /// occupancy/capacity ratios into the hysteresis monitor, and — only
    /// when congested roads exist — divert journeys headed into them
    /// through a congestion-weighted view of the network (emptier roads
    /// weigh more; congested and closed roads are inadmissible). When no
    /// road crosses the threshold the pass is a counter sweep and
    /// nothing walks the fleet.
    fn congestion_check(&mut self) {
        self.substrate.occupancy_snapshot(&mut self.occ_scratch);
        {
            let (ratios, occ, network) =
                (&mut self.ratio_scratch, &self.occ_scratch, &self.network);
            let topology = network.topology();
            ratios.clear();
            ratios.extend(
                topology
                    .road_ids()
                    .map(|r| occ[r.index()] as f64 / topology.road(r).capacity().max(1) as f64),
            );
        }
        let monitor = self.monitor.as_mut().expect("congestion policy installed");
        let any = monitor.update(&self.ratio_scratch);
        // Only suffix-eligible congestion matters in either direction:
        // an entry road can never appear in a rewritten route suffix,
        // so a congested entry road neither justifies a diversion pass
        // nor keeps restored detours out (the surge backlog drains
        // through entry roads long after the internal network clears).
        let suffix_congested = any && {
            let topology = self.network.topology();
            monitor
                .congested()
                .iter()
                .zip(topology.road_ids())
                .any(|(&congested, road)| congested && !topology.road(road).is_entry())
        };
        if !suffix_congested {
            // No congested road a route could avoid: vehicles still on
            // a congestion detour can come home. The pass runs once per
            // episode, at the congested→clear transition — undominated
            // (tied) detours stay tracked but are only re-examined when
            // a later episode clears, never on every periodic check.
            if self.congestion_restore_pending {
                self.congestion_restore_pending = false;
                if !self.congestion_diverted_ids.is_empty() {
                    self.restore_after_congestion_clears();
                }
            }
            return;
        }
        self.congestion_restore_pending = true;
        self.refresh_closed_mask();
        let (weights, ratios, monitor, closed) = (
            &mut self.weight_scratch,
            &self.ratio_scratch,
            self.monitor.as_ref().expect("congestion policy installed"),
            &self.closed_scratch,
        );
        weights.clear();
        weights.extend(monitor.congested().iter().zip(ratios).zip(closed).map(
            |((&congested, &ratio), &closed)| {
                if congested || closed {
                    0.0
                } else {
                    (1.0 - ratio).max(MIN_OPEN_ROAD_WEIGHT)
                }
            },
        ));
        let mut planner = Replanner::with_road_weights(
            self.network.topology(),
            &self.turning,
            &self.closed_scratch,
            &self.weight_scratch,
        );
        let congested = self
            .monitor
            .as_ref()
            .expect("congestion policy installed")
            .congested();
        let ids = &mut self.congestion_diverted_ids;
        let rerouted = self.substrate.replan_routes(&mut |id, route, fixed| {
            let new_route = planner.replan_congested(route, fixed, congested)?;
            ids.insert(id);
            Some(new_route)
        });
        self.congestion_reroutes += rerouted;
        let (diverted, detours) = (planner.diverted(), planner.detour_roads().to_vec());
        self.absorb_planner(diverted, 0, &detours);
    }

    /// Once the congested set empties: restores previously
    /// congestion-diverted vehicles whose detour is strictly dominated
    /// by an open continuation, using a weight-free planner (restore
    /// compares plain route lengths, not congestion weights). The
    /// tracked set is rebuilt from the walk, so completed vehicles fall
    /// out of it; vehicles whose detour is not dominated stay tracked
    /// and are re-examined when the next congestion episode clears.
    fn restore_after_congestion_clears(&mut self) {
        self.refresh_closed_mask();
        let mut planner =
            Replanner::new(self.network.topology(), &self.turning, &self.closed_scratch);
        let ids = &mut self.congestion_diverted_ids;
        let mut still: HashSet<VehicleId> = HashSet::new();
        self.substrate.replan_routes(&mut |id, route, fixed| {
            if !ids.contains(&id) {
                return None;
            }
            match planner.restore(route, fixed) {
                // Restored: the vehicle leaves the tracked set.
                Some(new_route) => Some(new_route),
                None => {
                    still.insert(id);
                    None
                }
            }
        });
        *ids = still;
        let (restored, detours) = (planner.restored(), planner.detour_roads().to_vec());
        self.congestion_restores += restored;
        self.absorb_planner(0, restored, &detours);
    }

    /// Steps until the scenario horizon is reached.
    pub fn run_to_end(&mut self) {
        while self.now.index() < self.spec.horizon.count() {
            self.step();
        }
    }

    /// The substrate this engine runs on.
    pub fn backend(&self) -> Backend {
        self.substrate.backend()
    }

    /// The aggregate outcome at the current instant.
    pub fn outcome(&self) -> ScenarioOutcome {
        let ledger = self.substrate.ledger();
        ScenarioOutcome {
            scenario: self.spec.name.clone(),
            backend: self.substrate.backend(),
            generated: self.demand.generated(),
            suppressed: self.demand.suppressed(),
            diverted: self.diverted,
            restored: self.restored,
            completed: ledger.completed(),
            fallback_activations: self.fallback_activations(),
            ticks_degraded: self.ticks_degraded(),
            recovery_time: self.recovery_time(),
            avg_queuing_time_s: self.substrate.mean_waiting_including_active() * self.dt_seconds,
            mean_journey_s: ledger.journey_stats().mean() * self.dt_seconds,
            final_backlog: self.substrate.backlog_len(),
        }
    }

    /// The configuration this engine was built under.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Turns on periodic checkpoint capture: every `policy.period`
    /// ticks (at the tick boundary, before that tick's events apply) the
    /// engine snapshots its full state via
    /// [`checkpoint`](Self::checkpoint), retains the bytes in a small
    /// ring ([`checkpoints`](Self::checkpoints)), and — when a recorder
    /// is installed — records a `checkpoint` event carrying the
    /// snapshot's size and CRC. The policy is embedded in every
    /// snapshot, so a restored run keeps the cadence (and its
    /// `checkpoint` events) without re-arming.
    pub fn enable_checkpoints(&mut self, policy: CheckpointPolicy) {
        assert!(policy.period >= 1, "checkpoint period must be at least 1");
        self.ckpt_policy = Some(policy);
    }

    /// The policy-captured checkpoints still retained, oldest first
    /// (the newest `CHECKPOINT_RETAIN` = 4 captures; empty without
    /// [`enable_checkpoints`](Self::enable_checkpoints)).
    pub fn checkpoints(&self) -> &[(Tick, Vec<u8>)] {
        &self.checkpoints
    }

    /// The newest retained policy-captured checkpoint.
    pub fn latest_checkpoint(&self) -> Option<&(Tick, Vec<u8>)> {
        self.checkpoints.last()
    }

    /// Records a `restore` event at the current tick (a no-op without a
    /// recorder). Restoration itself never auto-records: a resumed run's
    /// event stream must stay byte-equal to the uninterrupted run's, so
    /// marking the seam in timelines is the *caller's* choice —
    /// `fallback` says whether the restore fell back past a corrupted
    /// newer checkpoint.
    pub fn mark_restored(&mut self, fallback: bool) {
        if self.telemetry.active {
            self.telemetry.recorder.record(Event {
                tick: self.now,
                kind: EventKind::Restore { fallback },
            });
        }
    }

    /// Serializes the engine's full state into a durable snapshot (the
    /// `utilbp-snapshot` container): structural metadata, the scenario
    /// spec in text form, the plant's dynamic state, the engine's own
    /// dynamic state, and — when a flight recorder is installed — the
    /// recorder buffer and event watermarks. Gauge series and profiler
    /// accumulations are measurements, not state, and are not captured.
    ///
    /// [`restore`](Self::restore) rebuilds an engine that continues
    /// bit-identically; capturing the restored engine at the same tick
    /// yields byte-identical snapshot bytes (save→load→save is a fixed
    /// point).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut snapshot = SnapshotWriter::new();

        let mut meta = StateWriter::new();
        meta.push(match self.config.backend {
            Backend::Queueing => 0,
            Backend::Microscopic => 1,
        });
        meta.push(match self.config.parallelism {
            Parallelism::Serial => 0,
            Parallelism::Rayon => 1,
        });
        meta.push_bool(self.config.guard);
        meta.push_bool(self.config.guard_observe);
        meta.push(micro_fingerprint(&self.config.micro));
        match self.ckpt_policy {
            Some(policy) => {
                meta.push_bool(true);
                meta.push(policy.period);
            }
            None => meta.push_bool(false),
        }
        match self.recorder() {
            Some(recorder) => {
                meta.push_bool(true);
                meta.push_usize(recorder.capacity());
            }
            None => meta.push_bool(false),
        }
        snapshot.section_words(TAG_META, meta.words());

        snapshot.section_bytes(TAG_SPEC, self.spec.to_text().as_bytes());

        let mut plant = StateWriter::new();
        self.substrate.save_state(&mut plant);
        snapshot.section_words(TAG_PLANT, plant.words());

        let mut engine = StateWriter::new();
        self.save_engine_state(&mut engine);
        snapshot.section_words(TAG_ENGINE, engine.words());

        if let Some(recorder) = self.recorder() {
            let mut telemetry = StateWriter::new();
            recorder.save_state(&mut telemetry);
            telemetry.push_usize(self.telemetry.prev_trace.len());
            for &value in &self.telemetry.prev_trace {
                telemetry.push(u64::from(value));
            }
            telemetry.push_usize(self.telemetry.prev_activations.len());
            for &value in &self.telemetry.prev_activations {
                telemetry.push(value);
            }
            telemetry.push_usize(self.telemetry.prev_recoveries.len());
            for &value in &self.telemetry.prev_recoveries {
                telemetry.push(value);
            }
            snapshot.section_words(TAG_TELEMETRY, telemetry.words());
        }

        snapshot.finish()
    }

    /// Serializes the engine-side dynamic state (everything outside the
    /// plant and the telemetry plane).
    fn save_engine_state(&self, writer: &mut StateWriter) {
        writer.push(self.now.index());
        writer.push_usize(self.cursor);
        writer.push_bool(self.fault_switch.is_active());
        writer.push_bool(self.actuation_switch.is_active());
        self.demand.save_state(writer);
        writer.push(self.diverted);
        writer.push(self.restored);
        writer.push(self.congestion_reroutes);
        writer.push(self.congestion_restores);
        writer.push_bool(self.congestion_restore_pending);
        // The id sets serialize sorted: only membership is ever queried,
        // and the canonical order makes save→load→save a byte-level
        // fixed point.
        let mut ids: Vec<u64> = self.diverted_ids.iter().map(|v| v.raw()).collect();
        ids.sort_unstable();
        writer.push_usize(ids.len());
        for id in ids {
            writer.push(id);
        }
        let mut ids: Vec<u64> = self
            .congestion_diverted_ids
            .iter()
            .map(|v| v.raw())
            .collect();
        ids.sort_unstable();
        writer.push_usize(ids.len());
        for id in ids {
            writer.push(id);
        }
        match &self.monitor {
            Some(monitor) => {
                writer.push_bool(true);
                writer.push_usize(monitor.congested.len());
                for &congested in &monitor.congested {
                    writer.push_bool(congested);
                }
                writer.push(monitor.transitions);
            }
            None => writer.push_bool(false),
        }
        writer.push_usize(self.detour_roads.len());
        for &road in &self.detour_roads {
            writer.push_u32(road.index() as u32);
        }
    }

    /// Restores the engine-side dynamic state written by
    /// [`save_engine_state`](Self::save_engine_state).
    fn load_engine_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.now = Tick::new(reader.take()?);
        let cursor = reader.take_usize()?;
        if cursor > self.actions.len() {
            return Err(StateError::Invalid {
                what: "event timeline cursor",
                word: cursor as u64,
            });
        }
        self.cursor = cursor;
        self.fault_switch.set_active(reader.take_bool()?);
        self.actuation_switch.set_active(reader.take_bool()?);
        self.demand.load_state(&self.network, reader)?;
        self.diverted = reader.take()?;
        self.restored = reader.take()?;
        self.congestion_reroutes = reader.take()?;
        self.congestion_restores = reader.take()?;
        self.congestion_restore_pending = reader.take_bool()?;
        let len = reader.take_usize()?;
        self.diverted_ids.clear();
        for _ in 0..len {
            self.diverted_ids.insert(VehicleId::new(reader.take()?));
        }
        let len = reader.take_usize()?;
        self.congestion_diverted_ids.clear();
        for _ in 0..len {
            self.congestion_diverted_ids
                .insert(VehicleId::new(reader.take()?));
        }
        let has_monitor = reader.take_bool()?;
        if has_monitor != self.monitor.is_some() {
            return Err(StateError::Invalid {
                what: "congestion monitor presence",
                word: u64::from(has_monitor),
            });
        }
        if let Some(monitor) = self.monitor.as_mut() {
            let roads = reader.take_usize()?;
            if roads != monitor.congested.len() {
                return Err(StateError::Invalid {
                    what: "congestion monitor road count",
                    word: roads as u64,
                });
            }
            for flag in monitor.congested.iter_mut() {
                *flag = reader.take_bool()?;
            }
            monitor.transitions = reader.take()?;
        }
        let detours = reader.take_usize()?;
        self.detour_roads.clear();
        for _ in 0..detours {
            self.detour_roads.push(RoadId::new(reader.take_u32()?));
        }
        Ok(())
    }

    /// Rebuilds an engine from a [`checkpoint`](Self::checkpoint) and
    /// resumes it: the embedded spec is parsed back, a fresh engine is
    /// built under `config`, and every dynamic-state section overwrites
    /// the fresh state. The restored engine continues **bit-identically**
    /// to the uninterrupted run — same [`ScenarioOutcome`], same
    /// telemetry JSONL.
    ///
    /// `config.backend` and the guard flags must match the capturing
    /// engine's (the plant state is substrate-shaped); `config.parallelism`
    /// **may differ** — Serial and Rayon execution are bit-identical by
    /// the substrate contract, so a snapshot captured under one mode
    /// resumes exactly under the other.
    ///
    /// # Errors
    ///
    /// Never panics on untrusted bytes: returns
    /// [`RestoreError::Snapshot`] for container damage (bad magic,
    /// version skew, truncation, per-section checksum mismatch) or a
    /// semantically invalid word stream, [`RestoreError::Spec`] when the
    /// embedded spec does not parse, and [`RestoreError::Mismatch`] when
    /// `config` disagrees with the checkpoint's configuration.
    pub fn restore(
        bytes: &[u8],
        config: EngineConfig,
        make_controller: &dyn Fn(usize) -> Box<dyn SignalController>,
    ) -> Result<Self, RestoreError> {
        let snapshot = SnapshotReader::parse(bytes)?;
        let spec_text = std::str::from_utf8(snapshot.bytes(TAG_SPEC)?)
            .map_err(|_| RestoreError::Spec("spec section is not UTF-8".to_string()))?;
        let spec = crate::format::parse_scenario(spec_text).map_err(RestoreError::Spec)?;

        let meta_words = snapshot.words(TAG_META)?;
        let mut meta = StateReader::new(&meta_words);
        let word = meta.take()?;
        let backend = match word {
            0 => Backend::Queueing,
            1 => Backend::Microscopic,
            _ => {
                return Err(StateError::Invalid {
                    what: "backend tag",
                    word,
                }
                .into())
            }
        };
        if backend != config.backend {
            return Err(RestoreError::Mismatch { what: "backend" });
        }
        let word = meta.take()?;
        if word > 1 {
            return Err(StateError::Invalid {
                what: "parallelism tag",
                word,
            }
            .into());
        }
        if meta.take_bool()? != config.guard {
            return Err(RestoreError::Mismatch { what: "guard" });
        }
        if meta.take_bool()? != config.guard_observe {
            return Err(RestoreError::Mismatch {
                what: "guard_observe",
            });
        }
        if meta.take()? != micro_fingerprint(&config.micro) {
            return Err(RestoreError::Mismatch {
                what: "microscopic parameters",
            });
        }
        let policy = if meta.take_bool()? {
            let period = meta.take()?;
            if period == 0 {
                return Err(StateError::Invalid {
                    what: "checkpoint period",
                    word: 0,
                }
                .into());
            }
            Some(CheckpointPolicy { period })
        } else {
            None
        };
        let recorder_capacity = if meta.take_bool()? {
            let capacity = meta.take_usize()?;
            if capacity == 0 {
                return Err(StateError::Invalid {
                    what: "flight recorder capacity",
                    word: 0,
                }
                .into());
            }
            Some(capacity)
        } else {
            None
        };
        meta.finish().map_err(RestoreError::from)?;

        let mut engine =
            ScenarioEngine::new(spec, config, make_controller).map_err(RestoreError::Spec)?;
        engine.ckpt_policy = policy;

        if let Some(capacity) = recorder_capacity {
            let words = snapshot.words(TAG_TELEMETRY)?;
            let mut reader = StateReader::new(&words);
            let mut recorder = FlightRecorder::new(capacity);
            recorder.load_state(&mut reader)?;
            engine.set_recorder(Box::new(recorder));
            let len = reader.take_usize()?;
            engine.telemetry.prev_trace.clear();
            for _ in 0..len {
                let word = reader.take()?;
                let value = u16::try_from(word).map_err(|_| StateError::Invalid {
                    what: "phase trace watermark",
                    word,
                })?;
                engine.telemetry.prev_trace.push(value);
            }
            let len = reader.take_usize()?;
            engine.telemetry.prev_activations.clear();
            for _ in 0..len {
                engine.telemetry.prev_activations.push(reader.take()?);
            }
            let len = reader.take_usize()?;
            engine.telemetry.prev_recoveries.clear();
            for _ in 0..len {
                engine.telemetry.prev_recoveries.push(reader.take()?);
            }
            reader.finish().map_err(RestoreError::from)?;
        }

        let words = snapshot.words(TAG_PLANT)?;
        let mut reader = StateReader::new(&words);
        engine.substrate.load_state(&mut reader)?;
        reader.finish().map_err(RestoreError::from)?;

        let words = snapshot.words(TAG_ENGINE)?;
        let mut reader = StateReader::new(&words);
        engine.load_engine_state(&mut reader)?;
        reader.finish().map_err(RestoreError::from)?;

        Ok(engine)
    }

    /// Forks the run: captures a checkpoint of the current state and
    /// restores it into an **independent** engine for what-if
    /// exploration — closing roads, surging demand, or swapping
    /// controller behavior in the fork never disturbs the primary
    /// timeline (the fork shares no mutable state with `self`). Stepping
    /// a pristine fork produces exactly the primary's future.
    ///
    /// # Errors
    ///
    /// A [`RestoreError`] if the round-trip fails (it only can if the
    /// factory builds a controller stack inconsistent with this run's).
    pub fn fork(
        &self,
        make_controller: &dyn Fn(usize) -> Box<dyn SignalController>,
    ) -> Result<Self, RestoreError> {
        Self::restore(&self.checkpoint(), self.config, make_controller)
    }
}

/// Runs `spec` to its horizon on `config`'s substrate and returns the
/// outcome.
///
/// # Errors
///
/// Returns the validation message if the spec is inconsistent with its
/// own network.
pub fn run_scenario(
    spec: ScenarioSpec,
    config: EngineConfig,
    make_controller: &dyn Fn(usize) -> Box<dyn SignalController>,
) -> Result<ScenarioOutcome, String> {
    let mut engine = ScenarioEngine::new(spec, config, make_controller)?;
    engine.run_to_end();
    Ok(engine.outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::builtin;
    use crate::spec::{DemandProfile, ScenarioSpec, TopologySpec};
    use utilbp_core::{Ticks, UtilBp};
    use utilbp_netgen::{GridSpec, Pattern, RingSpec};

    fn util_factory() -> impl Fn(usize) -> Box<dyn SignalController> {
        |_| Box::new(UtilBp::paper()) as Box<dyn SignalController>
    }

    #[test]
    fn runs_every_builtin_on_both_backends() {
        for spec in crate::library::builtin_scenarios() {
            let mut short = spec.clone();
            // Trim long scenarios for the unit test; the trim drops
            // closure events the shorter horizon no longer covers.
            short.set_horizon(Ticks::new(short.horizon.count().min(250)));
            for backend in Backend::ALL {
                let outcome =
                    run_scenario(short.clone(), EngineConfig::new(backend), &util_factory())
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                assert!(
                    outcome.generated > 0,
                    "{} on {backend} generated nothing",
                    spec.name
                );
                assert!(outcome.avg_queuing_time_s >= 0.0);
            }
        }
    }

    #[test]
    fn closure_events_block_then_release_traffic() {
        let spec = builtin("grid-incident").expect("builtin exists");
        let (closed_road, close_at, reopen_at) = {
            let mut close = None;
            let mut reopen = None;
            for e in &spec.events {
                match *e {
                    ScenarioEvent::CloseRoad { road, at } => close = Some((road, at)),
                    ScenarioEvent::ReopenRoad { at, .. } => reopen = Some(at),
                    _ => {}
                }
            }
            let (road, at) = close.unwrap();
            (road, at, reopen.unwrap())
        };
        let mut engine =
            ScenarioEngine::new(spec, EngineConfig::default(), &util_factory()).unwrap();
        // Run past the closure: the road must drain to zero and stay
        // empty while closed.
        while engine.now() < close_at {
            engine.step();
        }
        let mut saw_empty = false;
        while engine.now() < reopen_at {
            engine.step();
            saw_empty |= engine.road_occupancy(closed_road) == 0;
        }
        assert!(saw_empty, "closed road must drain");
        assert_eq!(
            engine.road_occupancy(closed_road),
            0,
            "no traffic enters a closed road"
        );
        // With replanning off, nothing is ever diverted.
        assert_eq!(engine.vehicles_diverted(), 0);
        assert!(engine.detour_roads().is_empty());
        let mut saw_traffic = false;
        while engine.now().index() < engine.spec().horizon.count() {
            engine.step();
            saw_traffic |= engine.road_occupancy(closed_road) > 0;
        }
        assert!(saw_traffic, "reopened road carries traffic again");
    }

    #[test]
    fn replanning_scenario_diverts_en_route_vehicles() {
        let mut spec = builtin("grid-incident-replan").expect("builtin exists");
        spec.set_horizon(Ticks::new(300));
        for backend in Backend::ALL {
            let outcome = run_scenario(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");
            assert!(
                outcome.diverted > 0,
                "{backend}: the closure must divert en-route vehicles"
            );
        }
    }

    #[test]
    fn fault_window_opens_and_closes() {
        let spec = builtin("arterial-sensor-dropout").expect("builtin exists");
        let (from, until) = match spec.sensor_fault() {
            Some((_, from, until)) => (from, until),
            None => panic!("scenario has a fault window"),
        };
        let mut engine =
            ScenarioEngine::new(spec, EngineConfig::default(), &util_factory()).unwrap();
        assert!(!engine.faults_active());
        while engine.now() <= from {
            engine.step();
        }
        assert!(engine.faults_active(), "window open after `from`");
        while engine.now() <= until {
            engine.step();
        }
        assert!(!engine.faults_active(), "window shut after `until`");
    }

    #[test]
    fn surge_events_raise_demand() {
        let spec = ScenarioSpec {
            name: "surge-test".to_string(),
            seed: 3,
            horizon: Ticks::new(400),
            topology: TopologySpec::Ring(RingSpec::default()),
            demand: DemandProfile::Constant,
            events: vec![ScenarioEvent::Surge {
                factor: 5.0,
                from: Tick::new(200),
                until: Tick::new(400),
            }],
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        };
        let mut engine =
            ScenarioEngine::new(spec, EngineConfig::default(), &util_factory()).unwrap();
        while engine.now().index() < 200 {
            engine.step();
        }
        let before = engine.demand_generated();
        engine.run_to_end();
        let during = engine.demand_generated() - before;
        assert!(
            during as f64 > before as f64 * 2.5,
            "surge window must out-arrive the base window: {before} vs {during}"
        );
    }

    #[test]
    fn rejects_invalid_specs() {
        let spec = ScenarioSpec {
            name: "bad".to_string(),
            seed: 0,
            horizon: Ticks::new(100),
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::II,
            },
            demand: DemandProfile::Constant,
            events: vec![ScenarioEvent::CloseRoad {
                road: utilbp_netgen::RoadId::new(9999),
                at: Tick::new(1),
            }],
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        };
        assert!(ScenarioEngine::new(spec, EngineConfig::default(), &util_factory()).is_err());
    }
}
