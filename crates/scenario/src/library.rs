//! The built-in scenario library: ready-made specs covering every
//! topology family, time-varying demand, closures, sensor/actuator
//! fault windows, and watchdog-guarded degradation.

use utilbp_core::{Tick, Ticks};
use utilbp_microsim::Fidelity;
use utilbp_netgen::{ArterialSpec, AsymmetricGridSpec, GridSpec, Pattern, RingSpec};

use crate::spec::{DemandProfile, ReplanPolicy, ScenarioEvent, ScenarioSpec, TopologySpec};

/// The straight-biased 3×3 grid `grid-incident-recover` runs on: heavy
/// north–south demand and 80% through-traffic at every approach, so a
/// mid-network closure strictly degrades the through routes (the
/// precondition for reopen-restore to have anything to rewrite back).
fn recover_grid() -> AsymmetricGridSpec {
    AsymmetricGridSpec {
        // Heavy north/south entries (Pattern I-like), light east/west.
        inter_arrival_s: [3.0, 9.0, 3.0, 9.0],
        turning: utilbp_netgen::TurningProbabilities::new([(0.1, 0.1); 4])
            .expect("0.1 right + 0.1 left per side is a valid table"),
        ..AsymmetricGridSpec::default()
    }
}

/// All built-in scenarios, in presentation order:
///
/// | Name | Topology | Demand | Events |
/// |---|---|---|---|
/// | `paper-grid` | 3×3 grid | constant (Pattern II) | — |
/// | `arterial-rush-hour` | 5-junction arterial | rush-hour ramp | — |
/// | `ring-pulse` | 6-junction ring | pulse | — |
/// | `asym-bottleneck` | 3×3 asymmetric grid | constant | — |
/// | `grid-incident` | 3×3 grid | constant | closure + reopening |
/// | `grid-incident-replan` | 3×3 grid | constant | mid-network closure + reopening, en-route replanning on |
/// | `grid-incident-recover` | 3×3 straight-biased asym. grid | constant + surge | compressed closure + reopening, divert **and** restore inside a short horizon |
/// | `grid-congestion-replan` | 3×3 grid | constant + surge | periodic congestion-aware replanning, no closures |
/// | `arterial-sensor-dropout` | 5-junction arterial | day profile | sensor-fault window |
/// | `grid-actuator-fault` | 3×3 grid | constant | actuator/comms fault window (stuck, dropped, delayed commands) |
/// | `grid-degraded-recovery` | 3×3 grid | constant | frozen-counter sensor window + per-intersection watchdog fallback |
///
/// `grid-incident-replan` closes a road two hops into the network (the
/// center intersection's southbound arm) with
/// [`ReplanPolicy::AtNextJunction`], so upstream vehicles that have not
/// yet committed to the closed segment divert instead of queueing into
/// the spill-back. `grid-incident-recover` runs the same center-south
/// incident on a *straight-biased* asymmetric grid (80% through-traffic,
/// so detours are strictly worse than the through route) on a compressed
/// timeline (close at 100, reopen at 130): both halves of the policy —
/// diversion *and* reopen-restore — fire even under aggressive CI
/// horizon caps. `grid-congestion-replan` has no incident at all: a
/// demand surge saturates the heavily loaded north–south axis and the
/// [`ReplanPolicy::Congestion`] monitor diverts journeys around roads
/// whose occupancy crosses the threshold — the endogenous, queue-state-
/// driven routing regime.
///
/// The two fault-plane builtins exercise the CPS failure modes beyond
/// sensing: `grid-actuator-fault` opens an actuation window over the
/// loaded grid (phases jam, commands drop and arrive late — the
/// controller computes correctly but the plant executes something else);
/// `grid-degraded-recovery` freezes every detector counter mid-run with
/// a watchdog installed, so each intersection's monitor flags the frozen
/// stream, hands control to its fixed-time fallback
/// (`fallback_activations > 0`), and hands it back with hysteresis once
/// the window closes and readings go live again (`ticks_degraded` stops
/// growing — full recovery).
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    let paper_grid = TopologySpec::Grid {
        spec: GridSpec::paper(),
        pattern: Pattern::II,
    };
    // The road `grid-incident` closes: the first internal road of the
    // paper grid (deterministic by construction order). Built from the
    // bare grid topology — no route enumeration needed for a road lookup.
    let incident_road = {
        let grid = utilbp_netgen::GridNetwork::new(GridSpec::paper());
        let topo = grid.topology();
        let road = topo
            .road_ids()
            .find(|&r| topo.road(r).is_internal())
            .expect("the paper grid has internal roads");
        road
    };
    // The road `grid-incident-replan` closes: the center intersection's
    // southbound road. It sits two hops deep, so when it closes there is
    // real upstream traffic that has *not* yet committed to it — exactly
    // the population en-route replanning can divert. (The first internal
    // road above is committed at every crossing route's first hop, which
    // would leave the replanner nothing to rewrite.)
    let deep_incident_road = {
        use utilbp_core::standard::Approach;
        let grid = utilbp_netgen::GridNetwork::new(GridSpec::paper());
        let center = grid.intersection_at(utilbp_netgen::GridPos::new(1, 1));
        grid.topology()
            .intersection(center)
            .outgoing_road(Approach::South.outgoing())
    };
    // The same center-southbound incident for `grid-incident-recover`,
    // on its straight-biased asymmetric grid.
    let recover_incident_road = {
        use utilbp_core::standard::Approach;
        let net = TopologySpec::AsymmetricGrid(recover_grid()).build();
        // Row-major intersection ids: the center of a 3×3 grid is 4.
        net.topology()
            .intersection(utilbp_netgen::IntersectionId::new(4))
            .outgoing_road(Approach::South.outgoing())
    };

    vec![
        ScenarioSpec {
            name: "paper-grid".to_string(),
            seed: 2020,
            horizon: Ticks::new(600),
            topology: paper_grid.clone(),
            demand: DemandProfile::Constant,
            events: Vec::new(),
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "arterial-rush-hour".to_string(),
            seed: 2020,
            horizon: Ticks::new(900),
            topology: TopologySpec::Arterial(ArterialSpec::default()),
            demand: DemandProfile::RushHour {
                ramp: 200,
                peak: 300,
                peak_factor: 2.5,
            },
            events: Vec::new(),
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "ring-pulse".to_string(),
            seed: 2020,
            horizon: Ticks::new(700),
            topology: TopologySpec::Ring(RingSpec::default()),
            demand: DemandProfile::Pulse {
                from: 200,
                len: 150,
                factor: 3.0,
            },
            events: Vec::new(),
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "asym-bottleneck".to_string(),
            seed: 2020,
            horizon: Ticks::new(600),
            topology: TopologySpec::AsymmetricGrid(AsymmetricGridSpec::default()),
            demand: DemandProfile::Constant,
            events: Vec::new(),
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-incident".to_string(),
            seed: 2020,
            horizon: Ticks::new(700),
            topology: paper_grid,
            demand: DemandProfile::Constant,
            events: vec![
                ScenarioEvent::CloseRoad {
                    road: incident_road,
                    at: Tick::new(150),
                },
                ScenarioEvent::ReopenRoad {
                    road: incident_road,
                    at: Tick::new(400),
                },
            ],
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-incident-replan".to_string(),
            seed: 2020,
            horizon: Ticks::new(700),
            // Pattern I loads the north/south axis, so the center
            // column's southbound closure has real upstream traffic to
            // divert.
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::I,
            },
            demand: DemandProfile::Constant,
            events: vec![
                ScenarioEvent::CloseRoad {
                    road: deep_incident_road,
                    at: Tick::new(150),
                },
                ScenarioEvent::ReopenRoad {
                    road: deep_incident_road,
                    at: Tick::new(450),
                },
            ],
            replan: ReplanPolicy::AtNextJunction,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-incident-recover".to_string(),
            seed: 2020,
            horizon: Ticks::new(600),
            // A *straight-biased* grid (the asymmetric-grid family carries
            // the turning table): with 80% through-traffic, every detour
            // is strictly worse than the through route, so the reopening
            // strictly dominates the detours and reopen-restore has a real
            // population to rewrite back. (On the paper turning table a
            // right-turn detour often ties the through route exactly —
            // correct behavior, but nothing to restore.) The timeline is
            // compressed so the reopening lands while diverted vehicles
            // are still upstream of their detour turn, even when CI caps
            // the horizon.
            topology: TopologySpec::AsymmetricGrid(recover_grid()),
            demand: DemandProfile::Constant,
            events: vec![
                ScenarioEvent::Surge {
                    factor: 2.5,
                    from: Tick::new(0),
                    until: Tick::new(600),
                },
                ScenarioEvent::CloseRoad {
                    road: recover_incident_road,
                    at: Tick::new(100),
                },
                ScenarioEvent::ReopenRoad {
                    road: recover_incident_road,
                    at: Tick::new(130),
                },
            ],
            replan: ReplanPolicy::AtNextJunction,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-congestion-replan".to_string(),
            seed: 2020,
            horizon: Ticks::new(700),
            // Pattern I again: the north–south axis carries 3× the
            // east–west load, so the surge saturates the central column
            // first and the congestion monitor has asymmetry to exploit.
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::I,
            },
            demand: DemandProfile::Constant,
            events: vec![ScenarioEvent::Surge {
                factor: 4.0,
                from: Tick::new(40),
                until: Tick::new(400),
            }],
            // The threshold is calibrated to *internal* roads: boundary
            // entry roads saturate first under the surge, but an entry
            // road can never appear in a route suffix, so only internal
            // congestion is divertible (and it builds more slowly than
            // the entry backlog).
            replan: ReplanPolicy::Congestion {
                period: 20,
                threshold: 0.2,
                hysteresis: 0.04,
            },
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "arterial-sensor-dropout".to_string(),
            seed: 2020,
            horizon: Ticks::new(700),
            topology: TopologySpec::Arterial(ArterialSpec::default()),
            demand: DemandProfile::Day { peak_factor: 2.0 },
            events: vec![ScenarioEvent::SensorFault {
                config: utilbp_baselines::SensorFaultConfig {
                    dropout: 0.3,
                    freeze: 0.1,
                    ..utilbp_baselines::SensorFaultConfig::NONE
                },
                from: Tick::new(150),
                until: Tick::new(450),
            }],
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-actuator-fault".to_string(),
            seed: 2020,
            horizon: Ticks::new(600),
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::II,
            },
            demand: DemandProfile::Constant,
            events: vec![ScenarioEvent::ActuationFault {
                config: utilbp_baselines::ActuationFaultConfig {
                    stuck: 0.05,
                    stuck_ticks: 40,
                    drop: 0.2,
                    delay: 0.15,
                    delay_ticks: 4,
                },
                from: Tick::new(100),
                until: Tick::new(400),
            }],
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: Fidelity::Exact,
        },
        ScenarioSpec {
            name: "grid-degraded-recovery".to_string(),
            seed: 2020,
            horizon: Ticks::new(600),
            topology: TopologySpec::Grid {
                spec: GridSpec::paper(),
                pattern: Pattern::II,
            },
            demand: DemandProfile::Constant,
            // frozen = 1.0: every detector latches at its tick-100 truth
            // for the whole window. The loaded grid has non-empty queues
            // by then, so each watchdog sees a frozen, non-empty stream,
            // degrades to fixed-time, and recovers (with hysteresis)
            // once the window closes at 250 and counters go live again.
            events: vec![ScenarioEvent::SensorFault {
                config: utilbp_baselines::SensorFaultConfig {
                    frozen: 1.0,
                    ..utilbp_baselines::SensorFaultConfig::NONE
                },
                from: Tick::new(100),
                until: Tick::new(250),
            }],
            replan: ReplanPolicy::Off,
            watchdog: Some(utilbp_baselines::WatchdogConfig::default()),
            fidelity: Fidelity::Exact,
        },
    ]
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_the_required_axes() {
        let all = builtin_scenarios();
        assert!(all.len() >= 11, "at least eleven built-ins");
        assert!(
            all.iter()
                .any(|s| s.replan == ReplanPolicy::AtNextJunction && s.has_closures()),
            "a replanning incident scenario"
        );
        assert!(
            all.iter()
                .any(|s| matches!(s.replan, ReplanPolicy::Congestion { .. }) && !s.has_closures()),
            "a congestion-replanning scenario with no incident"
        );
        let non_grid = all
            .iter()
            .filter(|s| !matches!(s.topology, TopologySpec::Grid { .. }))
            .count();
        assert!(non_grid >= 3, "at least three non-grid topologies");
        let time_varying = all.iter().filter(|s| s.demand.is_time_varying()).count();
        assert!(time_varying >= 2, "at least two time-varying profiles");
        assert!(all.iter().any(|s| s.has_closures()), "a closure scenario");
        assert!(
            all.iter().any(|s| s.sensor_fault().is_some()),
            "a sensor-fault scenario"
        );
        assert!(
            all.iter().any(|s| s.actuation_fault().is_some()),
            "an actuation-fault scenario"
        );
        assert!(
            all.iter()
                .any(|s| s.watchdog.is_some() && s.sensor_fault().is_some()),
            "a watchdog-guarded degradation scenario"
        );
    }

    #[test]
    fn every_builtin_validates() {
        for spec in builtin_scenarios() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn builtin_lookup_by_name() {
        assert!(builtin("paper-grid").is_some());
        assert!(builtin("ring-pulse").is_some());
        assert!(builtin("grid-incident-replan").is_some());
        assert!(builtin("grid-incident-recover").is_some());
        assert!(builtin("grid-congestion-replan").is_some());
        assert!(builtin("grid-actuator-fault").is_some());
        assert!(builtin("grid-degraded-recovery").is_some());
        assert!(builtin("no-such-scenario").is_none());
    }
}
