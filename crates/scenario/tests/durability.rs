//! Durability gates for the checkpoint/restore plane.
//!
//! The contract under test: a run interrupted at an arbitrary tick and
//! resumed from a checkpoint finishes **bit-identically** to the
//! uninterrupted run — same `ScenarioOutcome`, byte-equal telemetry
//! JSONL — across scenarios, both substrates, and both execution modes;
//! snapshot→restore→snapshot is a byte-level fixed point; corrupted
//! containers surface typed errors, never panics; and a fork is a fully
//! independent timeline.

use utilbp_core::{Parallelism, SignalController, Ticks, UtilBp};
use utilbp_scenario::{
    builtin, Backend, CheckpointPolicy, EngineConfig, RestoreError, ScenarioEngine,
};
use utilbp_snapshot::SnapshotError;

fn controller(_: usize) -> Box<dyn SignalController> {
    Box::new(UtilBp::paper())
}

/// Builds an engine for a trimmed builtin with recording on.
fn engine_for(name: &str, config: EngineConfig, horizon: u64) -> ScenarioEngine {
    let mut spec = builtin(name).expect("builtin scenario");
    spec.horizon = Ticks::new(horizon);
    let mut engine = ScenarioEngine::new(spec, config, &controller).expect("engine builds");
    engine.enable_recording(256);
    engine
}

/// The golden oracle: run uninterrupted to the horizon.
fn golden(name: &str, config: EngineConfig, horizon: u64) -> (ScenarioEngine, String) {
    let mut engine = engine_for(name, config, horizon);
    engine.run_to_end();
    let jsonl = engine.events_jsonl();
    (engine, jsonl)
}

/// Interrupt at `cut`, checkpoint, drop the engine, restore from bytes,
/// and resume to the horizon.
fn interrupted(
    name: &str,
    config: EngineConfig,
    horizon: u64,
    cut: u64,
) -> (ScenarioEngine, String) {
    let bytes = {
        let mut engine = engine_for(name, config, horizon);
        for _ in 0..cut {
            engine.step();
        }
        engine.checkpoint()
        // Engine dropped here: the resumed run sees only the bytes.
    };
    let mut resumed = ScenarioEngine::restore(&bytes, config, &controller).expect("restore");
    assert_eq!(
        resumed.now().index(),
        cut,
        "restore resumes at the cut tick"
    );
    resumed.run_to_end();
    let jsonl = resumed.events_jsonl();
    (resumed, jsonl)
}

/// The scenario × cut matrix: a plain run, a closure + replanning run
/// (diverted-vehicle trackers live), a congestion-replanning run
/// (monitor state live), and a degraded-recovery run (watchdog +
/// actuation-fault state live). Cuts are adversarial: mid-closure,
/// mid-fault-window, mid-surge.
const MATRIX: &[(&str, u64, u64)] = &[
    ("paper-grid", 240, 97),
    ("grid-incident-replan", 460, 260),
    ("grid-congestion-replan", 420, 311),
    ("grid-degraded-recovery", 420, 233),
];

fn assert_bit_identical(name: &str, config: EngineConfig, horizon: u64, cut: u64) {
    let (gold, gold_jsonl) = golden(name, config, horizon);
    let (resumed, resumed_jsonl) = interrupted(name, config, horizon, cut);
    assert_eq!(
        resumed.outcome(),
        gold.outcome(),
        "{name}: resumed outcome diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed_jsonl, gold_jsonl,
        "{name}: resumed telemetry JSONL diverged from the uninterrupted run"
    );
}

#[test]
fn resume_is_bit_identical_queueing_serial() {
    for &(name, horizon, cut) in MATRIX {
        assert_bit_identical(name, EngineConfig::new(Backend::Queueing), horizon, cut);
    }
}

#[test]
fn resume_is_bit_identical_queueing_rayon() {
    let mut config = EngineConfig::new(Backend::Queueing);
    config.parallelism = Parallelism::Rayon;
    config.micro.parallelism = Parallelism::Rayon;
    for &(name, horizon, cut) in MATRIX {
        assert_bit_identical(name, config, horizon, cut);
    }
}

#[test]
fn resume_is_bit_identical_microscopic_serial() {
    for &(name, horizon, cut) in MATRIX {
        assert_bit_identical(name, EngineConfig::new(Backend::Microscopic), horizon, cut);
    }
}

#[test]
fn resume_is_bit_identical_microscopic_rayon() {
    let mut config = EngineConfig::new(Backend::Microscopic);
    config.parallelism = Parallelism::Rayon;
    config.micro.parallelism = Parallelism::Rayon;
    for &(name, horizon, cut) in MATRIX {
        assert_bit_identical(name, config, horizon, cut);
    }
}

#[test]
fn resume_is_bit_identical_under_guard() {
    // The guard's own watermarks (closure drain levels, entered-counter
    // floor) are durable state: a restored guarded run must keep
    // enforcing invariants across the seam without tripping.
    let config = EngineConfig::new(Backend::Queueing).guarded();
    assert_bit_identical("grid-incident-replan", config, 460, 260);
}

#[test]
fn snapshot_restore_snapshot_is_a_fixed_point() {
    for backend in [Backend::Queueing, Backend::Microscopic] {
        let config = EngineConfig::new(backend);
        let mut engine = engine_for("grid-degraded-recovery", config, 420);
        for _ in 0..233 {
            engine.step();
        }
        let first = engine.checkpoint();
        let restored = ScenarioEngine::restore(&first, config, &controller).expect("restore");
        let second = restored.checkpoint();
        assert_eq!(
            first, second,
            "{backend:?}: save→load→save must be byte-stable"
        );
    }
}

#[test]
fn cross_mode_restore_is_bit_identical() {
    // Serial and Rayon execution are bit-identical by the substrate
    // contract, so a checkpoint captured under Serial resumes exactly
    // under Rayon (and the golden can be computed in either mode).
    let serial = EngineConfig::new(Backend::Queueing);
    let mut rayon = serial;
    rayon.parallelism = Parallelism::Rayon;
    rayon.micro.parallelism = Parallelism::Rayon;

    let (gold, gold_jsonl) = golden("grid-incident-replan", serial, 460);

    let bytes = {
        let mut engine = engine_for("grid-incident-replan", serial, 460);
        for _ in 0..260 {
            engine.step();
        }
        engine.checkpoint()
    };
    let mut resumed =
        ScenarioEngine::restore(&bytes, rayon, &controller).expect("cross-mode restore");
    resumed.run_to_end();
    assert_eq!(resumed.outcome(), gold.outcome());
    assert_eq!(resumed.events_jsonl(), gold_jsonl);
}

#[test]
fn periodic_checkpoints_fire_and_resume_keeps_the_cadence() {
    let config = EngineConfig::new(Backend::Queueing);

    // Golden: policy on for the whole run, so the JSONL carries every
    // periodic `checkpoint` event.
    let mut gold = engine_for("paper-grid", config, 300);
    gold.enable_checkpoints(CheckpointPolicy::every(64));
    gold.run_to_end();
    let gold_jsonl = gold.events_jsonl();
    assert!(
        gold_jsonl.contains("\"checkpoint\""),
        "periodic captures must surface as events"
    );
    assert!(!gold.checkpoints().is_empty(), "captures must be retained");

    // Interrupted: die right after the tick-192 capture; the newest
    // retained checkpoint carries the policy, so the resumed run records
    // the remaining `checkpoint` events (including re-recording tick
    // 192's, which the snapshot itself predates) without re-arming.
    let (cut_tick, bytes) = {
        let mut engine = engine_for("paper-grid", config, 300);
        engine.enable_checkpoints(CheckpointPolicy::every(64));
        for _ in 0..200 {
            engine.step();
        }
        let (tick, bytes) = engine.latest_checkpoint().expect("captures exist").clone();
        (tick, bytes)
    };
    assert_eq!(cut_tick.index(), 192);
    let mut resumed = ScenarioEngine::restore(&bytes, config, &controller).expect("restore");
    resumed.run_to_end();
    assert_eq!(resumed.outcome(), gold.outcome());
    assert_eq!(resumed.events_jsonl(), gold_jsonl);
}

#[test]
fn fork_does_not_disturb_the_primary_timeline() {
    let config = EngineConfig::new(Backend::Queueing);
    let mut primary = engine_for("grid-incident", config, 420);
    for _ in 0..150 {
        primary.step();
    }
    let before = primary.checkpoint();

    // A pristine fork stepped forward predicts the primary's future…
    let mut what_if = primary.fork(&controller).expect("fork");
    what_if.run_to_end();

    // …without perturbing the primary (bytes unchanged by the fork)…
    assert_eq!(
        primary.checkpoint(),
        before,
        "fork must not mutate the primary"
    );

    // …and the primary, stepped forward itself, arrives at the same end.
    primary.run_to_end();
    assert_eq!(what_if.outcome(), primary.outcome());
    assert_eq!(what_if.events_jsonl(), primary.events_jsonl());
}

#[test]
fn mark_restored_surfaces_a_restore_event() {
    // Restoration never auto-records (byte-identity would break), but a
    // crash-recovery operator can opt into marking the seam: the event
    // lands at the resume tick and notes whether recovery fell back
    // past a damaged newer checkpoint.
    let config = EngineConfig::new(Backend::Queueing);
    let bytes = {
        let mut engine = engine_for("paper-grid", config, 240);
        for _ in 0..97 {
            engine.step();
        }
        engine.checkpoint()
    };
    let mut resumed = ScenarioEngine::restore(&bytes, config, &controller).expect("restore");
    resumed.mark_restored(true);
    let jsonl = resumed.events_jsonl();
    assert!(
        jsonl.ends_with("{\"tick\":97,\"kind\":\"restore\",\"fallback\":true}\n"),
        "restore event missing from the stream tail: {jsonl}"
    );
    // The marked run still reaches the horizon normally.
    resumed.run_to_end();
    assert_eq!(resumed.now().index(), 240);
}

// ---------------------------------------------------------------------
// Error paths: damaged containers are rejected with typed errors.
// ---------------------------------------------------------------------

fn sample_checkpoint() -> (Vec<u8>, EngineConfig) {
    let config = EngineConfig::new(Backend::Queueing);
    let mut engine = engine_for("paper-grid", config, 120);
    for _ in 0..60 {
        engine.step();
    }
    (engine.checkpoint(), config)
}

#[test]
fn bad_magic_is_rejected() {
    let (mut bytes, config) = sample_checkpoint();
    bytes[0] ^= 0xFF;
    match ScenarioEngine::restore(&bytes, config, &controller).err() {
        Some(RestoreError::Snapshot(SnapshotError::BadMagic)) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_skew_is_rejected() {
    let (mut bytes, config) = sample_checkpoint();
    // The format version is the little-endian u32 right after the magic.
    bytes[8] = 0x7F;
    match ScenarioEngine::restore(&bytes, config, &controller).err() {
        Some(RestoreError::Snapshot(SnapshotError::UnsupportedVersion { found })) => {
            assert_eq!(found, 0x7F);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_bit_flips_fail_the_checksum() {
    let (bytes, config) = sample_checkpoint();
    // Flip one bit in every byte position in turn past the header;
    // every single flip must surface as a typed error — never a panic,
    // never a silent success.
    let step = (bytes.len() / 97).max(1); // sample ~97 positions
    for pos in (16..bytes.len()).step_by(step) {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x10;
        assert!(
            ScenarioEngine::restore(&damaged, config, &controller).is_err(),
            "bit flip at byte {pos} must be rejected"
        );
    }
}

#[test]
fn truncation_is_rejected_at_every_length() {
    let (bytes, config) = sample_checkpoint();
    let step = (bytes.len() / 61).max(1);
    for len in (0..bytes.len()).step_by(step) {
        assert!(
            ScenarioEngine::restore(&bytes[..len], config, &controller).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }
}

#[test]
fn config_mismatches_are_typed() {
    let (bytes, config) = sample_checkpoint();

    let mut wrong_backend = config;
    wrong_backend.backend = Backend::Microscopic;
    match ScenarioEngine::restore(&bytes, wrong_backend, &controller).err() {
        Some(RestoreError::Mismatch { what: "backend" }) => {}
        other => panic!("expected backend mismatch, got {other:?}"),
    }

    let guarded = config.guarded();
    match ScenarioEngine::restore(&bytes, guarded, &controller).err() {
        Some(RestoreError::Mismatch { what: "guard" }) => {}
        other => panic!("expected guard mismatch, got {other:?}"),
    }

    let mut wrong_micro = config;
    wrong_micro.micro.sigma = 0.25;
    match ScenarioEngine::restore(&bytes, wrong_micro, &controller).err() {
        Some(RestoreError::Mismatch {
            what: "microscopic parameters",
        }) => {}
        other => panic!("expected micro-parameter mismatch, got {other:?}"),
    }
}
