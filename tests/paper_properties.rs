//! End-to-end checks of the properties the paper claims in Section IV,
//! exercised across crates on live networks.

use adaptive_backpressure::baselines::OriginalBp;
use adaptive_backpressure::core::standard::{self, Approach, Turn};
use adaptive_backpressure::core::{
    IntersectionView, PhaseDecision, SignalController, Tick, Ticks, UtilBp,
};
use adaptive_backpressure::metrics::VehicleId;
use adaptive_backpressure::microsim::{MicroSim, MicroSimConfig};
use adaptive_backpressure::netgen::{
    Arrival, DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
    RouteChoice,
};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

fn util_controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

/// A controller pinned to one phase forever (test scaffolding).
struct HoldPhase(adaptive_backpressure::core::PhaseId);

impl SignalController for HoldPhase {
    fn decide(&mut self, _view: &IntersectionView<'_>, _now: Tick) -> PhaseDecision {
        PhaseDecision::Control(self.0)
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "hold-phase"
    }
}

/// Section IV, Q2 — work conservation down to the mini-slot, on the
/// paper-exact substrate, across several seeds and patterns.
#[test]
fn utilbp_is_work_conserving_across_seeds() {
    let grid = GridNetwork::new(GridSpec::paper());
    for (seed, pattern) in [(1u64, Pattern::II), (2, Pattern::III), (3, Pattern::IV)] {
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            util_controllers(9),
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(pattern, Ticks::new(600))),
            seed,
        );
        for k in 0..600u64 {
            let servable: Vec<bool> = grid
                .topology()
                .intersection_ids()
                .map(|i| {
                    let obs = sim.observe(i);
                    let layout = grid.topology().intersection(i).layout();
                    let view = IntersectionView::new(layout, &obs).unwrap();
                    layout.link_ids().any(|l| view.link_servable(l))
                })
                .collect();
            let report = sim.step(demand.poll(&grid, Tick::new(k)));
            let active_servable = grid
                .topology()
                .intersection_ids()
                .any(|i| servable[i.index()] && !report.decisions[i.index()].is_transition());
            if active_servable {
                assert!(
                    report.served > 0,
                    "seed {seed} pattern {pattern} tick {k}: no service despite demand"
                );
            }
        }
    }
}

/// Section IV, Q1/Q3 — UTIL-BP serves links with *negative* pressure
/// difference (the original policy would idle them).
#[test]
fn utilbp_allows_flow_on_negative_pressure_difference() {
    let grid = GridNetwork::new(GridSpec::with_size(1, 1));
    let mut sim = QueueSim::new(
        grid.topology().clone(),
        util_controllers(1),
        QueueSimConfig::paper_exact(),
    );
    // Three westbound vehicles; everything else empty. The exit road is
    // a boundary sink whose queue reads 0 — but even so, inject enough
    // vehicles downstream-free that the pressure difference at decision
    // time is ≥ 0 initially; the interesting case is mid-drain, when the
    // movement queue (e.g. 1) stays *below* any loaded exit. Force it:
    // pre-load the exit road by sending vehicles through first.
    let entry = grid
        .entries()
        .iter()
        .copied()
        .find(|e| e.side == Approach::East)
        .unwrap();
    let mut id = 0u64;
    let mut make = |n: usize| -> Vec<Arrival> {
        (0..n)
            .map(|_| {
                let a = Arrival {
                    vehicle: VehicleId::new(id),
                    tick: Tick::ZERO,
                    route: std::sync::Arc::new(grid.route(&entry, RouteChoice::Straight)),
                };
                id += 1;
                a
            })
            .collect()
    };
    sim.step(make(3));
    for _ in 0..120 {
        sim.step(Vec::new());
    }
    assert_eq!(sim.ledger().completed(), 3, "light traffic drains fully");

    // The discriminating case needs the *observed* downstream queue to
    // exceed the upstream movement queue while service continues. Build
    // it on a 1×2 grid whose downstream junction never serves the
    // west-straight flow (pinned to c2), so the internal road's queue
    // grows while the upstream junction keeps feeding it.
    let grid = GridNetwork::new(GridSpec::with_size(1, 2));
    let controllers: Vec<Box<dyn SignalController>> = vec![
        Box::new(UtilBp::paper()),
        Box::new(HoldPhase(standard::phase_id(2))),
    ];
    let mut sim = QueueSim::new(
        grid.topology().clone(),
        controllers,
        QueueSimConfig::paper_exact(),
    );
    let entry = grid
        .entries()
        .iter()
        .copied()
        .find(|e| e.side == Approach::West && e.slot == 0)
        .unwrap();
    let i0 = grid.intersection_at(adaptive_backpressure::netgen::GridPos::new(0, 0));
    let node = grid.topology().intersection(i0);
    let link = standard::link_id(Approach::West, Turn::Straight);
    let internal = node.outgoing_road(Turn::Straight.exit_from(Approach::West).outgoing());

    let mut id = 100u64;
    let mut served_with_negative_diff = false;
    for k in 0..240u64 {
        let batch = if k % 2 == 0 {
            id += 1;
            vec![Arrival {
                vehicle: VehicleId::new(id),
                tick: Tick::ZERO,
                route: std::sync::Arc::new(grid.route(&entry, RouteChoice::Straight)),
            }]
        } else {
            Vec::new()
        };
        let q_mov = sim.movement_queue_len(i0, link);
        let q_out = sim.road_queue(internal);
        let report = sim.step(batch);
        if q_mov > 0 && q_out > q_mov && report.served > 0 {
            served_with_negative_diff = true;
        }
    }
    assert!(
        served_with_negative_diff,
        "UTIL-BP must keep serving while the observed downstream queue \
         exceeds the upstream movement queue (negative pressure difference)"
    );
}

/// Section IV contrast — the original back-pressure policy stalls on
/// balanced queues (not work-conserving), measured end-to-end.
#[test]
fn original_bp_underserves_balanced_networks() {
    let grid = GridNetwork::new(GridSpec::paper());
    let horizon = 900u64;
    let run = |controllers: Vec<Box<dyn SignalController>>| -> u64 {
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            controllers,
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(horizon))),
            7,
        );
        for k in 0..horizon {
            sim.step(demand.poll(&grid, Tick::new(k)));
        }
        sim.ledger().completed()
    };
    let util = run(util_controllers(9));
    let original = run((0..9)
        .map(|_| Box::new(OriginalBp::new(Ticks::new(16))) as Box<dyn SignalController>)
        .collect());
    assert!(
        util > original,
        "UTIL-BP ({util}) must complete more journeys than original BP ({original})"
    );
}

/// Section IV, Q4 — dedicated turning lanes rule out head-of-line
/// blocking: right-turners flow even when the straight lane of the same
/// road is long.
#[test]
fn no_head_of_line_blocking_with_dedicated_lanes() {
    let grid = GridNetwork::new(GridSpec::with_size(1, 1));
    // Pin the signal to c2 (north/south right turns): the straight lane
    // never gets green and just accumulates.
    let controllers: Vec<Box<dyn SignalController>> =
        vec![Box::new(HoldPhase(standard::phase_id(2)))];
    let mut sim = MicroSim::new(
        grid.topology().clone(),
        controllers,
        MicroSimConfig::deterministic(),
    );
    let entry = grid
        .entries()
        .iter()
        .copied()
        .find(|e| e.side == Approach::North)
        .unwrap();
    let mut id = 0u64;
    for k in 0..300u64 {
        let mut batch = Vec::new();
        if k % 6 == 0 {
            // Alternate right-turners and straight-goers from the north.
            let choice = if (k / 6) % 2 == 0 {
                RouteChoice::TurnAt {
                    turn: Turn::Right,
                    path_index: 0,
                }
            } else {
                RouteChoice::Straight
            };
            batch.push(Arrival {
                vehicle: VehicleId::new(id),
                tick: Tick::ZERO,
                route: std::sync::Arc::new(grid.route(&entry, choice)),
            });
            id += 1;
        }
        sim.step(batch);
    }
    // Right-turners complete; straight-goers are all still stored.
    let completed = sim.ledger().completed();
    assert!(
        completed >= 20,
        "right-turners must flow despite the blocked straight lane, got {completed}"
    );
    assert!(
        sim.vehicles_in_network() >= 20,
        "straight-goers must still be queued"
    );
}

/// Finite capacities bound every road's occupancy at all times (both
/// substrates), even under a controller that ignores downstream state.
#[test]
fn capacities_bound_occupancy_under_stress() {
    let spec = GridSpec {
        capacity: 10,
        ..GridSpec::with_size(2, 2)
    };
    let grid = GridNetwork::new(spec);
    let n = grid.topology().num_intersections();
    let mut sim = QueueSim::new(
        grid.topology().clone(),
        (0..n)
            .map(|_| Box::new(OriginalBp::new(Ticks::new(12))) as Box<dyn SignalController>)
            .collect(),
        QueueSimConfig::paper_exact(),
    );
    let mut demand = DemandGenerator::new(
        &grid,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(900))),
        5,
    );
    for k in 0..900u64 {
        sim.step(demand.poll(&grid, Tick::new(k)));
        for r in grid.topology().road_ids() {
            assert!(
                sim.road_occupancy(r) <= 10,
                "tick {k}: road {r} exceeded its capacity"
            );
        }
    }
}
