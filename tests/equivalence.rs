//! The batched fidelity's statistical-equivalence gate, run as a tier-1
//! regression: the exact and batched car-following kernels must agree —
//! distributionally, under [`DEFAULT_TOLERANCES`] — on the macroscopic
//! metrics the paper's experiments are scored on.
//!
//! The sweep here runs the full default seed count but caps every
//! scenario's horizon at 600 ticks so the gate stays fast in debug
//! builds; the `equivalence` binary runs the uncapped sweep. Both the
//! sweep and the simulators are deterministic, so this is a fixed
//! regression gate, not a flaky statistical test: if it trips, the
//! batched kernel's numerical contract drifted.

use adaptive_backpressure::experiments::{equivalence, EquivalenceOptions, DEFAULT_TOLERANCES};

#[test]
fn batched_fidelity_is_statistically_equivalent_to_exact() {
    let opts = EquivalenceOptions {
        horizon_cap: Some(600),
        ..EquivalenceOptions::default()
    };
    let report = equivalence(&opts).expect("builtin scenarios run on both fidelities");
    assert!(
        report.queueing_invariant,
        "the queueing substrate has no car-following phase; the fidelity \
         flag must not change its outcome"
    );
    if let Err(violation) = report.check(DEFAULT_TOLERANCES) {
        panic!(
            "batched fidelity drifted from exact:\n{violation}\n\n{}",
            report.render()
        );
    }
}
