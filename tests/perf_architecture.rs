//! Integration tests of the performance architecture: shard-parallel
//! stepping must be bit-identical to serial stepping, and the
//! incrementally maintained sensor counters must never diverge from a
//! from-scratch rescan.

use adaptive_backpressure::core::{Parallelism, SignalController, Tick, Ticks, UtilBp};
use adaptive_backpressure::microsim::{MicroSim, MicroSimConfig};
use adaptive_backpressure::netgen::{
    Arrival, DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

fn grid() -> GridNetwork {
    GridNetwork::new(GridSpec::with_size(3, 3))
}

fn demand(grid: &GridNetwork, horizon: u64) -> DemandGenerator {
    DemandGenerator::new(
        grid,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(horizon))),
        42,
    )
}

/// Drives two identically seeded demand streams, one per execution mode.
fn tick_arrivals(gen: &mut DemandGenerator, grid: &GridNetwork, k: u64) -> Vec<Arrival> {
    gen.poll(grid, Tick::new(k))
}

#[test]
fn microsim_serial_and_rayon_are_step_identical() {
    const HORIZON: u64 = 500;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut serial = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: Parallelism::Serial,
            ..MicroSimConfig::default()
        },
    );
    let mut parallel = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: Parallelism::Rayon,
            ..MicroSimConfig::default()
        },
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    for k in 0..HORIZON {
        let a = serial.step(tick_arrivals(&mut demand_a, &g, k));
        let b = parallel.step(tick_arrivals(&mut demand_b, &g, k));
        assert_eq!(a, b, "step reports diverged at tick {k}");
    }
    assert!(serial.total_crossings() > 0, "traffic must actually flow");
    assert_eq!(serial.total_crossings(), parallel.total_crossings());
    assert_eq!(serial.vehicles_in_network(), parallel.vehicles_in_network());
    assert_eq!(serial.backlog_len(), parallel.backlog_len());
    // Final ledgers agree on every aggregate.
    let (ls, lp) = (serial.ledger(), parallel.ledger());
    assert_eq!(ls.completed(), lp.completed());
    assert_eq!(ls.active(), lp.active());
    assert_eq!(ls.waiting_stats().mean(), lp.waiting_stats().mean());
    assert_eq!(ls.journey_stats().mean(), lp.journey_stats().mean());
    assert_eq!(
        ls.mean_waiting_including_active(),
        lp.mean_waiting_including_active()
    );
}

#[test]
fn queueing_serial_and_rayon_are_step_identical() {
    const HORIZON: u64 = 500;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut serial = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig {
            parallelism: Parallelism::Serial,
            ..QueueSimConfig::default()
        },
    );
    let mut parallel = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig {
            parallelism: Parallelism::Rayon,
            ..QueueSimConfig::default()
        },
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    for k in 0..HORIZON {
        let a = serial.step(tick_arrivals(&mut demand_a, &g, k));
        let b = parallel.step(tick_arrivals(&mut demand_b, &g, k));
        assert_eq!(a, b, "step reports diverged at tick {k}");
    }
    assert!(serial.total_served() > 0, "traffic must actually flow");
    assert_eq!(serial.total_served(), parallel.total_served());
    assert_eq!(serial.backlog_len(), parallel.backlog_len());
    let (ls, lp) = (serial.ledger(), parallel.ledger());
    assert_eq!(ls.completed(), lp.completed());
    assert_eq!(ls.active(), lp.active());
    assert_eq!(ls.waiting_stats().mean(), lp.waiting_stats().mean());
    assert_eq!(ls.journey_stats().mean(), lp.journey_stats().mean());
}

#[test]
fn microsim_incremental_sensors_match_rescan_every_tick() {
    const HORIZON: u64 = 200;
    let g = grid();
    let n = g.topology().num_intersections();
    // Dawdling on (the default) so speeds fluctuate across the halt
    // threshold, exercising both counter directions.
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut gen = demand(&g, HORIZON);
    for k in 0..HORIZON {
        sim.step(tick_arrivals(&mut gen, &g, k));
        sim.verify_sensors()
            .unwrap_or_else(|msg| panic!("tick {k}: {msg}"));
    }
    assert!(
        sim.vehicles_in_network() > 50,
        "the run must build real queues for the check to mean anything"
    );
}

#[test]
fn queueing_incremental_sensors_match_rescan_every_tick() {
    const HORIZON: u64 = 200;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut sim = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig::default(),
    );
    let mut gen = demand(&g, HORIZON);
    for k in 0..HORIZON {
        sim.step(tick_arrivals(&mut gen, &g, k));
        sim.verify_sensors()
            .unwrap_or_else(|msg| panic!("tick {k}: {msg}"));
    }
    assert!(sim.total_served() > 0);
}

#[test]
fn step_into_reuses_buffers_and_matches_step() {
    // The allocation-free path must produce the same reports as the
    // allocating convenience wrapper.
    const HORIZON: u64 = 300;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut a = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut b = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    let mut arrivals = Vec::new();
    let mut report = adaptive_backpressure::microsim::StepReport::empty();
    for k in 0..HORIZON {
        let wrapped = a.step(tick_arrivals(&mut demand_a, &g, k));
        arrivals.clear();
        demand_b.poll_into(&g, Tick::new(k), &mut arrivals);
        b.step_into(&mut arrivals, &mut report);
        assert_eq!(wrapped, report, "reports diverged at tick {k}");
        assert!(arrivals.is_empty(), "step_into must drain the arrivals");
    }
}
