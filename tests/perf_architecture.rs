//! Integration tests of the performance architecture: shard-parallel
//! stepping must be bit-identical to serial stepping, the incrementally
//! maintained sensor counters must never diverge from a from-scratch
//! rescan, and the SoA vehicle-arena hot loop must reproduce the legacy
//! array-of-structs implementation bit for bit (golden oracle below).
//! The steady-state allocation bound lives in `tests/perf_alloc.rs`,
//! which needs a process-exclusive counting allocator.

use adaptive_backpressure::core::{Parallelism, SignalController, Tick, Ticks, UtilBp};
use adaptive_backpressure::microsim::{MicroSim, MicroSimConfig};
use adaptive_backpressure::netgen::{
    Arrival, DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Network, Pattern,
};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};
use adaptive_backpressure::scenario::{NetworkDemand, RateSchedule};

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

fn grid() -> GridNetwork {
    GridNetwork::new(GridSpec::with_size(3, 3))
}

fn demand(grid: &GridNetwork, horizon: u64) -> DemandGenerator {
    DemandGenerator::new(
        grid,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(horizon))),
        42,
    )
}

/// Drives two identically seeded demand streams, one per execution mode.
fn tick_arrivals(gen: &mut DemandGenerator, grid: &GridNetwork, k: u64) -> Vec<Arrival> {
    gen.poll(grid, Tick::new(k))
}

#[test]
fn microsim_serial_and_rayon_are_step_identical() {
    const HORIZON: u64 = 500;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut serial = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: Parallelism::Serial,
            ..MicroSimConfig::default()
        },
    );
    let mut parallel = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: Parallelism::Rayon,
            ..MicroSimConfig::default()
        },
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    for k in 0..HORIZON {
        let a = serial.step(tick_arrivals(&mut demand_a, &g, k));
        let b = parallel.step(tick_arrivals(&mut demand_b, &g, k));
        assert_eq!(a, b, "step reports diverged at tick {k}");
    }
    assert!(serial.total_crossings() > 0, "traffic must actually flow");
    assert_eq!(serial.total_crossings(), parallel.total_crossings());
    assert_eq!(serial.vehicles_in_network(), parallel.vehicles_in_network());
    assert_eq!(serial.backlog_len(), parallel.backlog_len());
    assert_eq!(serial.fleet_digest(), parallel.fleet_digest());
    // Final ledgers agree on every aggregate.
    let (ls, lp) = (serial.ledger(), parallel.ledger());
    assert_eq!(ls.completed(), lp.completed());
    assert_eq!(ls.active(), lp.active());
    assert_eq!(ls.waiting_stats().mean(), lp.waiting_stats().mean());
    assert_eq!(ls.journey_stats().mean(), lp.journey_stats().mean());
    assert_eq!(
        serial.mean_waiting_including_active(),
        parallel.mean_waiting_including_active()
    );
}

#[test]
fn queueing_serial_and_rayon_are_step_identical() {
    const HORIZON: u64 = 500;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut serial = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig {
            parallelism: Parallelism::Serial,
            ..QueueSimConfig::default()
        },
    );
    let mut parallel = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig {
            parallelism: Parallelism::Rayon,
            ..QueueSimConfig::default()
        },
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    for k in 0..HORIZON {
        let a = serial.step(tick_arrivals(&mut demand_a, &g, k));
        let b = parallel.step(tick_arrivals(&mut demand_b, &g, k));
        assert_eq!(a, b, "step reports diverged at tick {k}");
    }
    assert!(serial.total_served() > 0, "traffic must actually flow");
    assert_eq!(serial.total_served(), parallel.total_served());
    assert_eq!(serial.backlog_len(), parallel.backlog_len());
    let (ls, lp) = (serial.ledger(), parallel.ledger());
    assert_eq!(ls.completed(), lp.completed());
    assert_eq!(ls.active(), lp.active());
    assert_eq!(ls.waiting_stats().mean(), lp.waiting_stats().mean());
    assert_eq!(ls.journey_stats().mean(), lp.journey_stats().mean());
    assert_eq!(
        serial.mean_waiting_including_active(),
        parallel.mean_waiting_including_active()
    );
}

#[test]
fn microsim_incremental_sensors_match_rescan_every_tick() {
    const HORIZON: u64 = 200;
    let g = grid();
    let n = g.topology().num_intersections();
    // Dawdling on (the default) so speeds fluctuate across the halt
    // threshold, exercising both counter directions.
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut gen = demand(&g, HORIZON);
    for k in 0..HORIZON {
        sim.step(tick_arrivals(&mut gen, &g, k));
        sim.verify_sensors()
            .unwrap_or_else(|msg| panic!("tick {k}: {msg}"));
    }
    assert!(
        sim.vehicles_in_network() > 50,
        "the run must build real queues for the check to mean anything"
    );
}

#[test]
fn queueing_incremental_sensors_match_rescan_every_tick() {
    const HORIZON: u64 = 200;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut sim = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig::default(),
    );
    let mut gen = demand(&g, HORIZON);
    for k in 0..HORIZON {
        sim.step(tick_arrivals(&mut gen, &g, k));
        sim.verify_sensors()
            .unwrap_or_else(|msg| panic!("tick {k}: {msg}"));
    }
    assert!(sim.total_served() > 0);
}

#[test]
fn step_into_reuses_buffers_and_matches_step() {
    // The allocation-free path must produce the same reports as the
    // allocating convenience wrapper.
    const HORIZON: u64 = 300;
    let g = grid();
    let n = g.topology().num_intersections();
    let mut a = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut b = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut demand_a = demand(&g, HORIZON);
    let mut demand_b = demand(&g, HORIZON);

    let mut arrivals = Vec::new();
    let mut report = adaptive_backpressure::microsim::StepReport::empty();
    for k in 0..HORIZON {
        let wrapped = a.step(tick_arrivals(&mut demand_a, &g, k));
        arrivals.clear();
        demand_b.poll_into(&g, Tick::new(k), &mut arrivals);
        b.step_into(&mut arrivals, &mut report);
        assert_eq!(wrapped, report, "reports diverged at tick {k}");
        assert!(arrivals.is_empty(), "step_into must drain the arrivals");
    }
}

/// Legacy-semantics oracle: these constants were produced by the
/// pre-arena implementation (`VecDeque<Vehicle>` per lane, ledger-side
/// waiting accumulation) on the identical seeded run — 5×5 grid,
/// UTIL-BP, Pattern I demand (seed 77), microsim seed 0, serial. The SoA
/// arena, per-vehicle wait accumulators, and query-time ledger fold must
/// reproduce every number bit for bit, including the f64 position/speed
/// sums (same operations in the same order).
#[test]
fn arena_matches_legacy_oracle_on_seeded_5x5_run() {
    struct Golden {
        tick: u64,
        crossings: u64,
        completed: u64,
        active: usize,
        in_network: usize,
        backlog: usize,
        digest: (usize, usize, f64, f64),
        wait_mean: f64,
        wait_inc: f64,
        journey: f64,
    }
    let goldens = [
        Golden {
            tick: 299,
            crossings: 3048,
            completed: 291,
            active: 944,
            in_network: 942,
            backlog: 2,
            digest: (910, 32, 182945.353260837, 6016.231170764876),
            wait_mean: 15.996563573883163,
            wait_inc: 27.54736842105263,
            journey: 163.68041237113405,
        },
        Golden {
            tick: 599,
            crossings: 7579,
            completed: 1188,
            active: 1234,
            in_network: 1086,
            backlog: 148,
            digest: (1035, 51, 206771.5661903171, 5327.037561466268),
            wait_mean: 49.741582491582506,
            wait_inc: 61.77208918249381,
            journey: 229.6952861952861,
        },
    ];

    let g = GridNetwork::new(GridSpec::with_size(5, 5));
    let n = g.topology().num_intersections();
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: Parallelism::Serial,
            ..MicroSimConfig::default()
        },
    );
    let mut gen = DemandGenerator::new(
        &g,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(600))),
        77,
    );
    let mut next = goldens.iter();
    let mut expect = next.next();
    for k in 0..600u64 {
        sim.step(gen.poll(&g, Tick::new(k)));
        if let Some(golden) = expect {
            if k == golden.tick {
                assert_eq!(sim.total_crossings(), golden.crossings, "tick {k}");
                assert_eq!(sim.ledger().completed(), golden.completed, "tick {k}");
                assert_eq!(sim.ledger().active(), golden.active, "tick {k}");
                assert_eq!(sim.vehicles_in_network(), golden.in_network, "tick {k}");
                assert_eq!(sim.backlog_len(), golden.backlog, "tick {k}");
                assert_eq!(sim.fleet_digest(), golden.digest, "tick {k}");
                assert_eq!(
                    sim.ledger().waiting_stats().mean(),
                    golden.wait_mean,
                    "tick {k}"
                );
                assert_eq!(
                    sim.mean_waiting_including_active(),
                    golden.wait_inc,
                    "tick {k}"
                );
                assert_eq!(
                    sim.ledger().journey_stats().mean(),
                    golden.journey,
                    "tick {k}"
                );
                expect = next.next();
            }
        }
    }
    assert!(expect.is_none(), "all golden ticks must be reached");
}

/// One full disruption scenario (mid-run closure + reopen + demand surge)
/// driven over the arena layout, per execution mode; returns every
/// aggregate worth comparing.
fn disruption_run(parallelism: Parallelism) -> (u64, u64, usize, (usize, usize, f64, f64), f64) {
    const HORIZON: u64 = 400;
    let g = grid();
    let net = Network::from_grid(&g, Pattern::I);
    let n = g.topology().num_intersections();
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism,
            ..MicroSimConfig::default()
        },
    );
    let mut demand = NetworkDemand::new(&net, RateSchedule::flat(), 1.0, 21);
    let closed = net
        .topology()
        .road_ids()
        .find(|&r| net.topology().road(r).is_internal())
        .expect("grid has internal roads");
    let mut arrivals = Vec::new();
    let mut report = adaptive_backpressure::microsim::StepReport::empty();
    for k in 0..HORIZON {
        if k == 100 {
            sim.set_road_closed(closed, true);
            demand.set_road_closed(&net, closed, true);
        }
        if k == 150 {
            demand.set_surge(3.0);
        }
        if k == 220 {
            sim.set_road_closed(closed, false);
            demand.set_road_closed(&net, closed, false);
        }
        if k == 280 {
            demand.set_surge(1.0);
        }
        arrivals.clear();
        demand.poll_into(&net, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        if k % 50 == 0 {
            sim.verify_sensors()
                .unwrap_or_else(|msg| panic!("tick {k}: {msg}"));
        }
    }
    (
        sim.total_crossings(),
        sim.ledger().completed(),
        sim.backlog_len(),
        sim.fleet_digest(),
        sim.mean_waiting_including_active(),
    )
}

#[test]
fn arena_is_deterministic_across_modes_under_disruption_events() {
    let serial = disruption_run(Parallelism::Serial);
    let rayon = disruption_run(Parallelism::Rayon);
    let repeat = disruption_run(Parallelism::Serial);
    assert_eq!(serial, rayon, "serial vs rayon diverged under events");
    assert_eq!(serial, repeat, "repeated runs diverged under events");
    assert!(serial.0 > 0, "traffic must actually flow");
}
