//! The fault-plane acceptance gates: the deterministic chaos harness
//! over ≥ 20 seeded fault timelines per backend, and the
//! degraded-recovery builtin's activation/recovery arc on both
//! substrates.

use adaptive_backpressure::core::UtilBp;
use adaptive_backpressure::experiments::{run_chaos, ChaosConfig};
use adaptive_backpressure::scenario::{
    builtin, Backend, EngineConfig, ScenarioEngine, ScenarioEvent,
};

#[test]
fn chaos_harness_passes_twenty_timelines_per_backend() {
    // Each timeline runs four times per backend, always with the
    // invariant guard installed: a conservation, sensor-consistency, or
    // closed-road violation panics with a tick-stamped diagnostic, and
    // a Serial/Rayon or repeat-run divergence fails the run. `Ok` here
    // IS the property bundle: zero panics, exact conservation every
    // tick, bit-identical outcomes under active faults, and bounded
    // degradation.
    let config = ChaosConfig::default();
    assert!(config.timelines >= 20, "the acceptance floor");
    assert_eq!(config.backends.len(), 2, "both substrates");
    let report = run_chaos(&config).expect("every timeline upholds the fault-plane properties");
    assert_eq!(
        report.timelines.len(),
        config.timelines * config.backends.len()
    );
    // The chaos is real: the sampled fault configs are severe enough
    // that watchdogs actually trip somewhere in the family.
    assert!(
        report.total_activations() > 0,
        "at least one timeline must trip a watchdog"
    );
    // And the resilience table renders every row.
    let rendered = report.render();
    for timeline in &report.timelines {
        assert!(rendered.contains(&timeline.seed.to_string()));
    }
}

#[test]
fn degraded_recovery_builtin_activates_then_fully_recovers_on_both_backends() {
    let spec = builtin("grid-degraded-recovery").expect("builtin exists");
    let (from, until) = match spec.events.iter().find_map(|e| match e {
        ScenarioEvent::SensorFault { from, until, .. } => Some((*from, *until)),
        _ => None,
    }) {
        Some(window) => window,
        None => panic!("the builtin has a sensor-fault window"),
    };
    for backend in Backend::ALL {
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend).guarded(), &|_| {
                Box::new(UtilBp::paper())
            })
            .expect("spec validates");
        // Before the window: every stream is live, no watchdog trips.
        while engine.now() < from {
            engine.step();
        }
        assert_eq!(
            engine.fallback_activations(),
            0,
            "{backend}: plausible streams never trip the watchdog"
        );
        // Inside the window every counter is frozen; the monitors must
        // flag the dead streams and switch to the fixed-time fallback.
        while engine.now() < until {
            engine.step();
        }
        assert!(
            engine.fallback_activations() > 0,
            "{backend}: frozen counters must activate the fallback"
        );
        assert!(engine.ticks_degraded() > 0, "{backend}");
        // After the window the counters go live again; give the
        // hysteresis time to confirm recovery, then verify degradation
        // has fully stopped: `ticks_degraded` no longer grows.
        let horizon = engine.spec().horizon.count();
        let recovery_deadline = until.index() + (horizon - until.index()) / 2;
        while engine.now().index() < recovery_deadline {
            engine.step();
        }
        assert!(
            !engine.currently_degraded(),
            "{backend}: every intersection must recover after the window"
        );
        let degraded_at_deadline = engine.ticks_degraded();
        engine.run_to_end();
        assert_eq!(
            engine.ticks_degraded(),
            degraded_at_deadline,
            "{backend}: ticks_degraded stops growing after recovery"
        );
        assert!(
            engine.recovery_time() > 0.0,
            "{backend}: completed episodes report a recovery time"
        );
        let outcome = engine.outcome();
        assert_eq!(outcome.fallback_activations, engine.fallback_activations());
        assert_eq!(outcome.ticks_degraded, degraded_at_deadline);
        assert_eq!(outcome.recovery_time, engine.recovery_time());
    }
}
