//! Link check for the repo's markdown doc set: every relative path
//! referenced from `docs/*.md`, `ROADMAP.md`, and `CHANGES.md` must
//! resolve to a real file or directory, so the doc set can't silently
//! rot as the tree moves underneath it. External URLs and intra-page
//! anchors are out of scope (no network, no markdown rendering — this
//! is a cheap structural gate, not a prose checker).

use std::path::{Path, PathBuf};

/// Every `](target)` occurrence in `text` whose target is a relative
/// path (not `http(s)://`, `mailto:`, or a bare `#anchor`), with any
/// `#fragment` suffix stripped.
fn relative_link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("](") {
        rest = &rest[at + 2..];
        let Some(end) = rest.find(')') else { break };
        let target = &rest[..end];
        rest = &rest[end..];
        if target.is_empty()
            || target.starts_with('#')
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        let path = target.split('#').next().unwrap_or(target);
        if !path.is_empty() {
            out.push(path.to_string());
        }
    }
    out
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_file(doc: &Path, broken: &mut Vec<String>) {
    let text = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    let base = doc.parent().expect("doc files live in a directory");
    for target in relative_link_targets(&text) {
        if !base.join(&target).exists() {
            broken.push(format!("{} -> {target}", doc.display()));
        }
    }
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut docs: Vec<PathBuf> = vec![root.join("ROADMAP.md"), root.join("CHANGES.md")];
    let docs_dir = root.join("docs");
    assert!(
        docs_dir.is_dir(),
        "docs/ directory is part of the repo contract"
    );
    let mut in_docs: Vec<PathBuf> = std::fs::read_dir(&docs_dir)
        .expect("readable docs/")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    in_docs.sort();
    assert!(
        in_docs.iter().any(|p| p.ends_with("ARCHITECTURE.md"))
            && in_docs.iter().any(|p| p.ends_with("PERFORMANCE.md")),
        "the consolidated doc set must stay present"
    );
    docs.extend(in_docs);

    let mut broken = Vec::new();
    for doc in &docs {
        check_file(doc, &mut broken);
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn link_extraction_understands_the_cases_it_gates() {
    let text = "see [a](ARCHITECTURE.md), [b](../src/lib.rs#L1), \
                [c](https://example.com/x.md), [d](#local-anchor), \
                and [e](../crates/microsim/src/road.rs).";
    let targets = relative_link_targets(text);
    assert_eq!(
        targets,
        [
            "ARCHITECTURE.md",
            "../src/lib.rs",
            "../crates/microsim/src/road.rs"
        ]
    );
}
