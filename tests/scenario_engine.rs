//! Scenario-engine guarantees: determinism across execution modes and
//! repeated runs (including runs with mid-run disruption events), and
//! closure events that provably block and reroute traffic.

use adaptive_backpressure::core::{Parallelism, SignalController, Tick, Ticks, UtilBp};
use adaptive_backpressure::scenario::{
    builtin, builtin_scenarios, parse_scenario, run_scenario, Backend, DemandProfile, EngineConfig,
    ReplanPolicy, ScenarioEngine, ScenarioEvent, ScenarioOutcome, ScenarioSpec, TopologySpec,
};

fn util_factory() -> impl Fn(usize) -> Box<dyn SignalController> {
    |_| Box::new(UtilBp::paper()) as Box<dyn SignalController>
}

fn run(spec: &ScenarioSpec, backend: Backend, parallelism: Parallelism) -> ScenarioOutcome {
    let config = EngineConfig {
        parallelism,
        ..EngineConfig::new(backend)
    };
    run_scenario(spec.clone(), config, &util_factory()).expect("spec validates")
}

/// The incident scenario trimmed to a fast horizon that still covers the
/// closure and the reopening.
fn incident_spec() -> ScenarioSpec {
    let mut spec = builtin("grid-incident").expect("builtin exists");
    spec.horizon = Ticks::new(500);
    spec
}

/// The replanning incident scenario trimmed to a fast horizon that still
/// covers the closure and the reopening.
fn replan_spec() -> ScenarioSpec {
    let mut spec = builtin("grid-incident-replan").expect("builtin exists");
    assert_eq!(spec.replan, ReplanPolicy::AtNextJunction);
    spec.horizon = Ticks::new(500);
    spec
}

/// The recover scenario (early closure + reopening, replanning on)
/// trimmed to a fast horizon that still covers both events.
fn recover_spec() -> ScenarioSpec {
    let mut spec = builtin("grid-incident-recover").expect("builtin exists");
    assert_eq!(spec.replan, ReplanPolicy::AtNextJunction);
    spec.horizon = Ticks::new(400);
    spec
}

/// The congestion-replanning scenario trimmed to a fast horizon that
/// still covers the surge.
fn congestion_spec() -> ScenarioSpec {
    let mut spec = builtin("grid-congestion-replan").expect("builtin exists");
    assert!(matches!(spec.replan, ReplanPolicy::Congestion { .. }));
    spec.horizon = Ticks::new(400);
    spec
}

#[test]
fn same_scenario_and_seed_is_bit_identical_across_parallelism_and_repeats() {
    // Includes the closure/reopen scenarios — with and without en-route
    // replanning — plus the reopen-restore and congestion-replanning
    // builtins: events, periodic monitor reads, and route rewriting must
    // not disturb determinism in either execution mode.
    let specs = [
        incident_spec(),
        replan_spec(),
        recover_spec(),
        congestion_spec(),
        {
            let mut s = builtin("ring-pulse").expect("builtin exists");
            s.horizon = Ticks::new(300);
            s
        },
    ];
    for spec in &specs {
        for backend in Backend::ALL {
            let serial_a = run(spec, backend, Parallelism::Serial);
            let serial_b = run(spec, backend, Parallelism::Serial);
            let rayon = run(spec, backend, Parallelism::Rayon);
            // Bit-identical: f64 metrics compared exactly, not within eps.
            assert_eq!(serial_a, serial_b, "{} repeat on {backend}", spec.name);
            assert_eq!(
                serial_a, rayon,
                "{} serial vs rayon on {backend}",
                spec.name
            );
            assert!(serial_a.generated > 0, "{} on {backend}", spec.name);
        }
    }
}

#[test]
fn scenario_files_reproduce_in_memory_specs() {
    // Spec → text → spec → run must equal running the original spec.
    let spec = incident_spec();
    let reparsed = parse_scenario(&spec.to_text()).expect("rendered spec parses");
    assert_eq!(reparsed, spec);
    let a = run(&spec, Backend::Queueing, Parallelism::Serial);
    let b = run(&reparsed, Backend::Queueing, Parallelism::Serial);
    assert_eq!(a, b, "a round-tripped file runs identically");
}

#[test]
fn closure_blocks_the_road_and_demand_reroutes_around_it() {
    let spec = incident_spec();
    let (closed_road, close_at, reopen_at) = {
        let mut close = None;
        let mut reopen = None;
        for e in &spec.events {
            match *e {
                ScenarioEvent::CloseRoad { road, at } => close = Some((road, at)),
                ScenarioEvent::ReopenRoad { at, .. } => reopen = Some(at),
                _ => {}
            }
        }
        let (road, at) = close.expect("incident closes a road");
        (road, at, reopen.expect("incident reopens the road"))
    };

    for backend in Backend::ALL {
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");

        while engine.now() < close_at {
            engine.step();
        }
        let mut max_occupancy_while_closed = 0u32;
        let mut drained = false;
        while engine.now() < reopen_at {
            engine.step();
            let occ = engine.road_occupancy(closed_road);
            drained |= occ == 0;
            if drained {
                max_occupancy_while_closed = max_occupancy_while_closed.max(occ);
            }
        }
        // Blocked: once the closed road drained, nothing re-entered it.
        assert!(drained, "{backend}: the closed road must drain");
        assert_eq!(
            max_occupancy_while_closed, 0,
            "{backend}: no vehicle enters a closed road"
        );
        // Rerouted: traffic kept flowing through the rest of the network
        // during the closure (journeys still complete).
        let completed_during_closure = engine.ledger().completed();
        assert!(
            completed_during_closure > 0,
            "{backend}: traffic reroutes around the closure"
        );
        // And after the reopening the road carries vehicles again.
        let mut reopened_traffic = false;
        while engine.now().index() < engine.spec().horizon.count() {
            engine.step();
            reopened_traffic |= engine.road_occupancy(closed_road) > 0;
        }
        assert!(reopened_traffic, "{backend}: the reopened road is used");
    }
}

#[test]
fn replanning_diverts_upstream_vehicles_onto_detour_roads() {
    let spec = replan_spec();
    let (closed_road, close_at, reopen_at) = {
        let mut close = None;
        let mut reopen = None;
        for e in &spec.events {
            match *e {
                ScenarioEvent::CloseRoad { road, at } => close = Some((road, at)),
                ScenarioEvent::ReopenRoad { at, .. } => reopen = Some(at),
                _ => {}
            }
        }
        let (road, at) = close.expect("incident closes a road");
        (road, at, reopen.expect("incident reopens the road"))
    };

    for backend in Backend::ALL {
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");
        while engine.now() < close_at {
            engine.step();
        }
        assert_eq!(
            engine.vehicles_diverted(),
            0,
            "{backend}: nothing diverts early"
        );
        // Step across the closure event.
        engine.step();
        let diverted = engine.vehicles_diverted();
        assert!(
            diverted > 0,
            "{backend}: a loaded grid must have upstream vehicles to divert"
        );
        let detours: Vec<_> = engine.detour_roads().to_vec();
        assert!(
            !detours.is_empty(),
            "{backend}: diversions add detour roads"
        );
        assert!(
            !detours.contains(&closed_road),
            "{backend}: the closed road is never a detour"
        );
        let entered_before: Vec<u64> = detours.iter().map(|&r| engine.road_entered(r)).collect();

        // Run out the closure window: the diverted vehicles must actually
        // land on their detour roads, and the closed road must drain and
        // stay empty.
        let mut drained = false;
        let mut reentered = false;
        while engine.now() < reopen_at {
            engine.step();
            let occ = engine.road_occupancy(closed_road);
            reentered |= drained && occ > 0;
            drained |= occ == 0;
        }
        assert!(drained, "{backend}: the closed road must drain");
        assert!(!reentered, "{backend}: nothing re-enters a closed road");
        let landings: u64 = detours
            .iter()
            .zip(&entered_before)
            .map(|(&r, &before)| engine.road_entered(r) - before)
            .sum();
        assert!(
            landings > 0,
            "{backend}: diverted vehicles must land on detour roads"
        );
        // No diversions fire after the single closure event.
        assert_eq!(engine.vehicles_diverted(), diverted, "{backend}");
    }
}

#[test]
fn replanning_off_and_on_agree_until_the_closure() {
    // The same incident timeline with replanning off (`grid-incident`
    // uses reopen=400, so compare against a copy of the replan spec with
    // the policy switched off): identical demand stream, identical
    // everything — except the diverted counter and the post-closure
    // traffic pattern.
    let on = replan_spec();
    let mut off = on.clone();
    off.replan = ReplanPolicy::Off;
    for backend in Backend::ALL {
        let outcome_on =
            run_scenario(on.clone(), EngineConfig::new(backend), &util_factory()).unwrap();
        let outcome_off =
            run_scenario(off.clone(), EngineConfig::new(backend), &util_factory()).unwrap();
        assert!(outcome_on.diverted > 0, "{backend}");
        assert_eq!(outcome_off.diverted, 0, "{backend}");
        // Demand generation is upstream of replanning: both runs see the
        // same arrival process.
        assert_eq!(outcome_on.generated, outcome_off.generated, "{backend}");
        assert_eq!(outcome_on.suppressed, outcome_off.suppressed, "{backend}");
    }
}

#[test]
fn surge_and_fault_scenarios_stay_deterministic_with_events_applied() {
    let spec = ScenarioSpec {
        name: "events-determinism".to_string(),
        seed: 99,
        horizon: Ticks::new(300),
        topology: TopologySpec::Arterial(Default::default()),
        demand: DemandProfile::Pulse {
            from: 50,
            len: 100,
            factor: 2.0,
        },
        events: vec![
            ScenarioEvent::Surge {
                factor: 2.0,
                from: Tick::new(100),
                until: Tick::new(200),
            },
            ScenarioEvent::SensorFault {
                config: adaptive_backpressure::baselines::SensorFaultConfig {
                    dropout: 0.25,
                    freeze: 0.1,
                    ..adaptive_backpressure::baselines::SensorFaultConfig::NONE
                },
                from: Tick::new(80),
                until: Tick::new(220),
            },
            ScenarioEvent::ActuationFault {
                config: adaptive_backpressure::baselines::ActuationFaultConfig {
                    stuck: 0.05,
                    stuck_ticks: 20,
                    drop: 0.2,
                    delay: 0.1,
                    delay_ticks: 3,
                },
                from: Tick::new(120),
                until: Tick::new(260),
            },
        ],
        replan: ReplanPolicy::Off,
        watchdog: Some(adaptive_backpressure::baselines::WatchdogConfig::default()),
        fidelity: adaptive_backpressure::microsim::Fidelity::Exact,
    };
    for backend in Backend::ALL {
        let a = run(&spec, backend, Parallelism::Serial);
        let b = run(&spec, backend, Parallelism::Rayon);
        assert_eq!(a, b, "events + faults stay deterministic on {backend}");
    }
}

#[test]
fn mid_run_fault_switch_toggling_stays_deterministic_across_parallelism() {
    // The timeline normally drives the fault switches; here an external
    // supervisor toggles them between steps — open, shut, open again —
    // while the sharded phases run on the pool. Outcomes must stay
    // bit-identical across Serial/Rayon and across repeats: the switch
    // is read once per decision, and gated decorators draw nothing
    // while inactive.
    let spec = ScenarioSpec {
        name: "switch-toggle".to_string(),
        seed: 17,
        horizon: Ticks::new(240),
        topology: TopologySpec::Grid {
            spec: adaptive_backpressure::netgen::GridSpec::paper(),
            pattern: adaptive_backpressure::netgen::Pattern::II,
        },
        demand: DemandProfile::Constant,
        // Windowless fault events would never open the switches; give
        // the spec both fault configs with inert timelines so the
        // engine installs the gated decorators, then drive the switches
        // by hand.
        events: vec![
            ScenarioEvent::SensorFault {
                config: adaptive_backpressure::baselines::SensorFaultConfig {
                    frozen: 0.8,
                    dropout: 0.2,
                    ..adaptive_backpressure::baselines::SensorFaultConfig::NONE
                },
                from: Tick::new(230),
                until: Tick::new(235),
            },
            ScenarioEvent::ActuationFault {
                config: adaptive_backpressure::baselines::ActuationFaultConfig {
                    stuck: 0.1,
                    stuck_ticks: 15,
                    drop: 0.25,
                    delay: 0.2,
                    delay_ticks: 2,
                },
                from: Tick::new(230),
                until: Tick::new(235),
            },
        ],
        replan: ReplanPolicy::Off,
        watchdog: None,
        fidelity: adaptive_backpressure::microsim::Fidelity::Exact,
    };
    let toggled_run = |backend: Backend, parallelism: Parallelism| -> ScenarioOutcome {
        let config = EngineConfig {
            parallelism,
            ..EngineConfig::new(backend)
        };
        let mut engine =
            ScenarioEngine::new(spec.clone(), config, &util_factory()).expect("spec validates");
        let sensors = engine.sensor_fault_switch();
        let actuators = engine.actuation_fault_switch();
        while engine.now().index() < engine.spec().horizon.count() {
            match engine.now().index() {
                40 => sensors.set_active(true),
                90 => {
                    sensors.set_active(false);
                    actuators.set_active(true);
                }
                140 => sensors.set_active(true),
                190 => {
                    sensors.set_active(false);
                    actuators.set_active(false);
                }
                _ => {}
            }
            engine.step();
        }
        engine.outcome()
    };
    for backend in Backend::ALL {
        let serial_a = toggled_run(backend, Parallelism::Serial);
        let serial_b = toggled_run(backend, Parallelism::Serial);
        let rayon = toggled_run(backend, Parallelism::Rayon);
        assert_eq!(serial_a, serial_b, "{backend}: repeat determinism");
        assert_eq!(serial_a, rayon, "{backend}: serial vs rayon");
        assert!(serial_a.generated > 0, "{backend}");
    }
}

#[test]
fn reopening_restores_diverted_vehicles_with_exact_counters() {
    let spec = recover_spec();
    let (closed_road, close_at, reopen_at) = {
        let mut close = None;
        let mut reopen = None;
        for e in &spec.events {
            match *e {
                ScenarioEvent::CloseRoad { road, at } => close = Some((road, at)),
                ScenarioEvent::ReopenRoad { at, .. } => reopen = Some(at),
                _ => {}
            }
        }
        let (road, at) = close.expect("recover closes a road");
        (road, at, reopen.expect("recover reopens the road"))
    };

    for backend in Backend::ALL {
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");
        // Step across the closure: upstream traffic diverts.
        while engine.now() <= close_at {
            engine.step();
        }
        let diverted = engine.vehicles_diverted();
        assert!(diverted > 0, "{backend}: the closure diverts traffic");
        assert_eq!(
            engine.vehicles_restored(),
            0,
            "{backend}: nothing restores early"
        );

        // Step across the reopening: diverted vehicles still en route are
        // rewritten back onto the (strictly better) reopened corridor.
        let entered_at_reopen = engine.road_entered(closed_road);
        while engine.now() <= reopen_at {
            engine.step();
        }
        let restored = engine.vehicles_restored();
        assert!(
            restored > 0,
            "{backend}: the reopening must restore diverted vehicles"
        );
        assert!(
            restored <= diverted,
            "{backend}: only diverted vehicles can restore ({restored} vs {diverted})"
        );
        // The reopening itself diverts nobody new in this scenario (there
        // is no other closure to route around).
        assert_eq!(
            engine.vehicles_diverted(),
            diverted,
            "{backend}: a reopening with no remaining closures diverts nobody"
        );

        // Run out the horizon: restored vehicles actually return — the
        // reopened road carries traffic again.
        engine.run_to_end();
        assert!(
            engine.road_entered(closed_road) > entered_at_reopen,
            "{backend}: the reopened road must carry traffic again"
        );
        let outcome = engine.outcome();
        assert_eq!(outcome.diverted, engine.vehicles_diverted(), "{backend}");
        assert_eq!(outcome.restored, engine.vehicles_restored(), "{backend}");
        assert_eq!(
            engine.congestion_reroutes(),
            0,
            "{backend}: no congestion policy, no congestion reroutes"
        );
    }
}

#[test]
fn congestion_policy_reroutes_under_load_and_is_free_off_threshold() {
    let spec = congestion_spec();
    for backend in Backend::ALL {
        // Under the surge the monitored axis saturates and the periodic
        // pass reroutes journeys around it.
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");
        engine.run_to_end();
        assert!(
            engine.congestion_reroutes() > 0,
            "{backend}: the surge must trigger congestion reroutes"
        );
        assert_eq!(
            engine.vehicles_diverted(),
            engine.congestion_reroutes(),
            "{backend}: no closures, so every diversion is congestion-driven"
        );
        assert_eq!(engine.vehicles_restored(), 0, "{backend}");
        assert!(
            engine.congestion_transitions() > 0,
            "{backend}: roads crossed the threshold"
        );
        let outcome = engine.outcome();
        assert!(outcome.diverted > 0, "{backend}");

        // With a threshold no road can reach, the policy's off-path cost
        // is exactly zero: bit-identical to running with replanning off.
        let mut never = spec.clone();
        never.replan = ReplanPolicy::Congestion {
            period: 20,
            threshold: 1e6,
            hysteresis: 0.1,
        };
        let mut off = spec.clone();
        off.replan = ReplanPolicy::Off;
        let never_outcome =
            run_scenario(never, EngineConfig::new(backend), &util_factory()).unwrap();
        let off_outcome = run_scenario(off, EngineConfig::new(backend), &util_factory()).unwrap();
        assert_eq!(
            never_outcome, off_outcome,
            "{backend}: an untriggered congestion policy changes nothing"
        );
        assert_eq!(never_outcome.diverted, 0, "{backend}");
    }
}

#[test]
fn congestion_diverted_vehicles_restore_once_the_congested_set_clears() {
    // A surge on the straight-biased asymmetric grid (80%
    // through-traffic, so congestion detours are strictly worse by
    // turning weight — the same precondition reopen-restore needs)
    // saturates the north–south axis and the monitor diverts journeys
    // around it. Once every suffix-eligible road leaves the hysteresis
    // band, the engine offers each tracked congestion-diverted vehicle
    // its restore — the mirror image of reopen-restore for the
    // endogenous congestion regime.
    let spec = ScenarioSpec {
        name: "congestion-restore".to_string(),
        seed: 2020,
        horizon: Ticks::new(600),
        topology: TopologySpec::AsymmetricGrid(adaptive_backpressure::netgen::AsymmetricGridSpec {
            inter_arrival_s: [5.0, 12.0, 5.0, 12.0],
            turning: adaptive_backpressure::netgen::TurningProbabilities::new([(0.1, 0.1); 4])
                .expect("0.1 right + 0.1 left per side is a valid table"),
            ..adaptive_backpressure::netgen::AsymmetricGridSpec::default()
        }),
        demand: DemandProfile::Constant,
        events: vec![ScenarioEvent::Surge {
            factor: 5.0,
            from: Tick::new(40),
            until: Tick::new(100),
        }],
        replan: ReplanPolicy::Congestion {
            period: 10,
            threshold: 0.2,
            hysteresis: 0.04,
        },
        watchdog: None,
        fidelity: adaptive_backpressure::microsim::Fidelity::Exact,
    };
    for backend in Backend::ALL {
        let mut engine =
            ScenarioEngine::new(spec.clone(), EngineConfig::new(backend), &util_factory())
                .expect("spec validates");
        engine.run_to_end();
        assert!(
            engine.congestion_reroutes() > 0,
            "{backend}: the surge must trigger congestion reroutes"
        );
        let restores = engine.congestion_restores();
        assert!(
            restores > 0,
            "{backend}: clearing congestion must restore tracked detours"
        );
        assert_eq!(
            engine.vehicles_restored(),
            restores,
            "{backend}: no closures, so every restore is congestion-driven"
        );
        assert!(
            restores <= engine.congestion_reroutes(),
            "{backend}: only diverted vehicles can restore"
        );
        let outcome = engine.outcome();
        assert_eq!(outcome.restored, restores, "{backend}");
    }
}

#[test]
fn hysteresis_prevents_congested_set_churn_when_occupancy_hovers() {
    use adaptive_backpressure::scenario::CongestionMonitor;
    // Occupancy hovering around the threshold: with a hysteresis band the
    // road enters the congested set once and stays; with no band it
    // toggles on every crossing (the churn the band exists to prevent).
    let hovering = [0.45, 0.52, 0.48, 0.51, 0.46, 0.50, 0.44, 0.53, 0.42, 0.55];
    let mut banded = CongestionMonitor::new(0.5, 0.1, 1);
    let mut bare = CongestionMonitor::new(0.5, 0.0, 1);
    for &ratio in &hovering {
        banded.update(&[ratio]);
        bare.update(&[ratio]);
    }
    assert_eq!(
        banded.transitions(),
        1,
        "one onset, zero churn: every hovering ratio stays above the clear level"
    );
    assert!(
        bare.transitions() > 2,
        "without the band the set flips on every crossing ({} transitions)",
        bare.transitions()
    );
    // Falling well below the band releases the road.
    banded.update(&[0.2]);
    assert_eq!(banded.transitions(), 2);
    assert!(!banded.update(&[0.2]));
}

#[test]
fn builtin_library_meets_the_coverage_floor() {
    let all = builtin_scenarios();
    assert!(all.len() >= 7);
    let non_grid = all
        .iter()
        .filter(|s| !matches!(s.topology, TopologySpec::Grid { .. }))
        .count();
    assert!(non_grid >= 3);
    assert!(all.iter().filter(|s| s.demand.is_time_varying()).count() >= 2);
    assert!(all.iter().any(|s| s.has_closures()));
    assert!(all.iter().any(|s| s.sensor_fault().is_some()));
    assert!(all.iter().any(|s| s.actuation_fault().is_some()));
    assert!(all.iter().any(|s| s.watchdog.is_some()));
    assert!(all
        .iter()
        .any(|s| s.replan == ReplanPolicy::AtNextJunction && s.has_closures()));
    assert!(all
        .iter()
        .any(|s| matches!(s.replan, ReplanPolicy::Congestion { .. })));
}
