//! Smoke tests: every table/figure generator produces well-formed output
//! at reduced scale (full-scale regeneration lives in the bench targets).

use adaptive_backpressure::core::Ticks;
use adaptive_backpressure::experiments::{
    ablation, fig2, pattern1_detail, render_table1, render_table2, table3, Backend,
    ExperimentOptions,
};
use adaptive_backpressure::netgen::{Pattern, TurningProbabilities};

fn tiny() -> ExperimentOptions {
    let mut opts = ExperimentOptions::quick();
    opts.backend = Backend::Queueing;
    opts.hour = Ticks::new(240);
    opts.trace_horizon = Ticks::new(240);
    opts.periods = vec![12, 20];
    opts
}

#[test]
fn input_tables_render() {
    let t1 = render_table1(&TurningProbabilities::PAPER);
    assert!(t1.contains("Table I"));
    assert!(t1.contains("0.4"));
    let t2 = render_table2();
    assert!(t2.contains("Table II"));
    assert!(t2.contains("uniform"));
}

#[test]
fn fig2_generates_curve_and_reference_line() {
    let result = fig2(&tiny());
    assert_eq!(result.capbp.len(), 2);
    assert!(result.capbp.iter().all(|&(_, v)| v >= 0.0));
    assert!(result.utilbp >= 0.0);
    let rendered = result.render();
    for needle in ["Fig. 2", "CAP-BP", "UTIL-BP", "improvement"] {
        assert!(rendered.contains(needle), "missing {needle}");
    }
}

#[test]
fn table3_generates_all_five_rows() {
    let result = table3(&tiny());
    assert_eq!(result.rows.len(), 5);
    let labels: Vec<&str> = result.rows.iter().map(|r| r.pattern.as_str()).collect();
    assert_eq!(labels, vec!["I", "II", "III", "IV", "Mixed"]);
    for row in &result.rows {
        assert!(row.capbp_s > 0.0, "{}", row.pattern);
        assert!(row.utilbp_s > 0.0, "{}", row.pattern);
        assert!([12u64, 20].contains(&row.best_period));
    }
    let rendered = result.render();
    assert!(rendered.contains("Table III"));
    assert!(rendered.contains("Mean improvement"));
}

#[test]
fn figures_3_4_5_generate_traces_and_series() {
    let detail = pattern1_detail(&tiny());
    assert_eq!(detail.capbp_trace.end().index(), 240);
    assert_eq!(detail.utilbp_trace.end().index(), 240);
    assert!(detail.capbp_trace.num_switches() > 0);
    assert!(!detail.capbp_queue.is_empty());
    assert!(!detail.utilbp_queue.is_empty());

    let f34 = detail.render_fig3_fig4();
    assert!(f34.contains("Fig. 3"));
    assert!(f34.contains("Fig. 4"));
    assert!(f34.contains("switches"));

    let f5 = detail.render_fig5();
    assert!(f5.contains("Fig. 5"));
    assert!(f5.contains("mean queue"));
}

#[test]
fn ablation_compares_all_variants() {
    let result = ablation(&tiny(), Pattern::I);
    assert_eq!(result.rows.len(), 5);
    assert_eq!(result.rows[0].variant, "UTIL-BP");
    assert!(result.render().contains("Ablation"));
}

#[test]
fn experiments_run_microscopically_too() {
    let mut opts = tiny();
    opts.backend = Backend::Microscopic;
    let result = fig2(&opts);
    assert!(result.utilbp > 0.0);
}
