//! Analytic validation: scenarios simple enough that the right answer is
//! known in closed form, checked end-to-end through controller + substrate.

use adaptive_backpressure::core::standard::{self, Approach, Turn};
use adaptive_backpressure::core::{SignalController, Tick, UtilBp};
use adaptive_backpressure::metrics::VehicleId;
use adaptive_backpressure::netgen::{Arrival, GridNetwork, GridSpec, RouteChoice};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

fn single_junction() -> (GridNetwork, QueueSim) {
    let grid = GridNetwork::new(GridSpec::with_size(1, 1));
    let sim = QueueSim::new(
        grid.topology().clone(),
        vec![Box::new(UtilBp::paper()) as Box<dyn SignalController>],
        QueueSimConfig::paper_exact(),
    );
    (grid, sim)
}

fn arrival(grid: &GridNetwork, side: Approach, id: u64, choice: RouteChoice) -> Arrival {
    let entry = grid
        .entries()
        .iter()
        .copied()
        .find(|e| e.side == side)
        .expect("side exists on a 1x1 grid");
    Arrival {
        vehicle: VehicleId::new(id),
        tick: Tick::ZERO,
        route: std::sync::Arc::new(grid.route(&entry, choice)),
    }
}

/// One movement, arrivals slower than the service rate: once the
/// controller locks onto the right phase, *nobody waits* in the paper's
/// store-and-forward model — each vehicle is served the mini-slot after it
/// joins the queue. Total waiting is bounded by the handful of vehicles
/// that arrive during the single initial amber.
#[test]
fn undersaturated_single_movement_has_near_zero_waiting() {
    let (grid, mut sim) = single_junction();
    let mut id = 0u64;
    let horizon = 600u64;
    for k in 0..horizon {
        let batch = if k % 4 == 0 {
            id += 1;
            vec![arrival(&grid, Approach::North, id, RouteChoice::Straight)]
        } else {
            Vec::new()
        };
        sim.step(batch);
    }
    // Drain what's left.
    for _ in 0..60 {
        sim.step(Vec::new());
    }
    let ledger = sim.ledger();
    assert_eq!(ledger.completed(), id, "every vehicle must complete");
    // At most the first ~2 vehicles (arriving before/during the initial
    // phase selection) wait a few ticks; the steady state waits zero.
    assert!(
        ledger.waiting_stats().mean() < 1.0,
        "mean waiting {} should be near zero in the undersaturated case",
        ledger.waiting_stats().mean()
    );
    assert_eq!(
        ledger.waiting_stats().max().unwrap_or(0.0).min(20.0),
        ledger.waiting_stats().max().unwrap_or(0.0),
        "worst case bounded by the initial amber"
    );
}

/// Two conflicting movements at combined demand well under capacity:
/// throughput must equal demand (work conservation end-to-end), and the
/// served split must match the demand split.
#[test]
fn conflicting_demands_are_both_served_in_full() {
    let (grid, mut sim) = single_junction();
    let mut id = 0u64;
    let horizon = 900u64;
    let mut north = 0u64;
    let mut east = 0u64;
    for k in 0..horizon {
        let mut batch = Vec::new();
        if k % 6 == 0 {
            id += 1;
            north += 1;
            batch.push(arrival(&grid, Approach::North, id, RouteChoice::Straight));
        }
        if k % 9 == 0 {
            id += 1;
            east += 1;
            batch.push(arrival(&grid, Approach::East, id, RouteChoice::Straight));
        }
        sim.step(batch);
    }
    for _ in 0..120 {
        sim.step(Vec::new());
    }
    assert_eq!(
        sim.ledger().completed(),
        north + east,
        "both conflicting flows must be served completely"
    );
    // With 1/6 + 1/9 veh/s demand against 1 veh/s per green link, waits
    // stay modest: bounded by a few phase alternations.
    assert!(
        sim.ledger().waiting_stats().mean() < 30.0,
        "mean waiting {} too high for this demand",
        sim.ledger().waiting_stats().mean()
    );
}

/// A right-turn-only demand must pull the right-turn phase (c2), even
/// though it is a 2-link phase — the per-movement pressure at work.
#[test]
fn right_turn_demand_attracts_the_right_turn_phase() {
    let (grid, mut sim) = single_junction();
    let mut id = 0u64;
    let mut c2_green = 0u64;
    for k in 0..300u64 {
        let batch = if k % 5 == 0 {
            id += 1;
            vec![arrival(
                &grid,
                Approach::North,
                id,
                RouteChoice::TurnAt {
                    turn: Turn::Right,
                    path_index: 0,
                },
            )]
        } else {
            Vec::new()
        };
        let report = sim.step(batch);
        if report.decisions[0].phase() == Some(standard::phase_id(2)) {
            c2_green += 1;
        }
    }
    assert!(
        c2_green > 200,
        "the right-turn phase must dominate green time, got {c2_green}/300"
    );
    assert!(sim.ledger().completed() > 40);
}
