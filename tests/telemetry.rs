//! The observability-plane acceptance gates: recording is strictly
//! passive (instrumented outcomes are bit-identical to uninstrumented
//! ones), the event stream itself is byte-deterministic across
//! Serial/Rayon and across repeats, watchdog telemetry surfaces
//! per-intersection, and the observe-mode guard stays silent on a
//! healthy plant.

use adaptive_backpressure::core::{Parallelism, SignalController, Ticks, UtilBp};
use adaptive_backpressure::scenario::{
    builtin, run_scenario, Backend, EngineConfig, ScenarioEngine, ScenarioOutcome, ScenarioSpec,
};

fn util_factory() -> impl Fn(usize) -> Box<dyn SignalController> {
    |_| Box::new(UtilBp::paper()) as Box<dyn SignalController>
}

/// A built-in trimmed to a CI-friendly horizon that still covers its
/// disruption events.
fn trimmed(name: &str, horizon: u64) -> ScenarioSpec {
    let mut spec = builtin(name).expect("builtin exists");
    spec.set_horizon(Ticks::new(horizon));
    spec
}

/// The three acceptance builtins: a fault builtin with the watchdog
/// installed, an actuation-fault window, and a closure + reopen with
/// en-route replanning.
fn acceptance_specs() -> Vec<ScenarioSpec> {
    vec![
        trimmed("grid-degraded-recovery", 400),
        trimmed("grid-actuator-fault", 350),
        trimmed("grid-incident-replan", 500),
    ]
}

/// Runs `spec` with the full observability plane on — flight recorder,
/// gauges, profiler, observe-mode guard — and returns the outcome plus
/// the JSONL event stream.
fn run_recorded(
    spec: &ScenarioSpec,
    backend: Backend,
    parallelism: Parallelism,
) -> (ScenarioOutcome, String) {
    let config = EngineConfig {
        parallelism,
        ..EngineConfig::new(backend).observed()
    };
    let mut engine =
        ScenarioEngine::new(spec.clone(), config, &util_factory()).expect("spec validates");
    engine.enable_recording(1 << 16);
    engine.enable_gauges(25);
    engine.enable_profiling();
    engine.run_to_end();
    (engine.outcome(), engine.events_jsonl())
}

/// Runs `spec` with no instrumentation at all (no recorder, no guard).
fn run_plain(spec: &ScenarioSpec, backend: Backend, parallelism: Parallelism) -> ScenarioOutcome {
    let config = EngineConfig {
        parallelism,
        ..EngineConfig::new(backend)
    };
    run_scenario(spec.clone(), config, &util_factory()).expect("spec validates")
}

#[test]
fn recording_is_passive_and_the_event_stream_is_byte_deterministic() {
    // The tentpole contract, on all three acceptance builtins: with the
    // whole plane enabled (recorder + gauges + profiler + observe-mode
    // guard) every outcome field is bit-identical to the uninstrumented
    // run, and the JSONL stream itself is byte-identical across
    // Serial/Rayon and across repeats.
    for spec in &acceptance_specs() {
        let plain = run_plain(spec, Backend::Queueing, Parallelism::Serial);
        let (serial_a, jsonl_a) = run_recorded(spec, Backend::Queueing, Parallelism::Serial);
        let (serial_b, jsonl_b) = run_recorded(spec, Backend::Queueing, Parallelism::Serial);
        let (rayon, jsonl_r) = run_recorded(spec, Backend::Queueing, Parallelism::Rayon);
        assert_eq!(plain, serial_a, "{}: recording must be passive", spec.name);
        assert_eq!(serial_a, serial_b, "{}: repeat outcome", spec.name);
        assert_eq!(serial_a, rayon, "{}: serial vs rayon outcome", spec.name);
        assert_eq!(jsonl_a, jsonl_b, "{}: repeat stream", spec.name);
        assert_eq!(jsonl_a, jsonl_r, "{}: serial vs rayon stream", spec.name);
        assert!(!jsonl_a.is_empty(), "{}: events were recorded", spec.name);
    }
    // And once on the microscopic substrate, with the fault builtin.
    let spec = trimmed("grid-degraded-recovery", 400);
    let plain = run_plain(&spec, Backend::Microscopic, Parallelism::Serial);
    let (serial, jsonl_s) = run_recorded(&spec, Backend::Microscopic, Parallelism::Serial);
    let (rayon, jsonl_r) = run_recorded(&spec, Backend::Microscopic, Parallelism::Rayon);
    assert_eq!(plain, serial, "microsim: recording must be passive");
    assert_eq!(serial, rayon, "microsim: serial vs rayon outcome");
    assert_eq!(jsonl_s, jsonl_r, "microsim: serial vs rayon stream");
}

#[test]
fn watchdog_telemetry_surfaces_per_intersection_and_in_order() {
    let spec = trimmed("grid-degraded-recovery", 400);
    let mut engine = ScenarioEngine::new(
        spec,
        EngineConfig::new(Backend::Queueing).observed(),
        &util_factory(),
    )
    .expect("spec validates");
    engine.enable_recording(1 << 16);
    engine.run_to_end();

    // Satellite: the per-intersection accessor, not just the sums. Each
    // intersection's counters are visible individually and the summed
    // accessors are exactly their totals.
    let stats = engine.watchdog_stats();
    assert_eq!(stats.len(), engine.network().topology().num_intersections());
    let activations: u64 = stats.iter().map(|s| s.activations()).sum();
    let degraded: u64 = stats.iter().map(|s| s.degraded_ticks()).sum();
    assert_eq!(activations, engine.fallback_activations());
    assert_eq!(degraded, engine.ticks_degraded());
    assert!(activations > 0, "the frozen window trips watchdogs");
    assert!(
        stats.iter().any(|s| s.activations() > 0),
        "at least one intersection shows its own activation"
    );

    // The stream tells the same story, in causal order: an activation
    // event precedes the first recovery event, and both are present.
    let jsonl = engine.events_jsonl();
    let first_activated = jsonl
        .lines()
        .position(|l| l.contains("\"watchdog_activated\""))
        .expect("activation events in the stream");
    let first_recovered = jsonl
        .lines()
        .position(|l| l.contains("\"watchdog_recovered\""))
        .expect("recovery events in the stream");
    assert!(
        first_activated < first_recovered,
        "activation precedes recovery in the stream"
    );
    // The fault window itself is in the stream, before any activation.
    let window_open = jsonl
        .lines()
        .position(|l| l.contains("\"sensor_fault_window\""))
        .expect("the fault window is an event");
    assert!(window_open < first_activated, "window opens before trips");
}

#[test]
fn observe_mode_guard_is_silent_on_a_healthy_plant() {
    // Observe mode reports violations as events instead of panicking —
    // and a healthy run under the full fault builtin produces none.
    for spec in &acceptance_specs() {
        let (_, jsonl) = run_recorded(spec, Backend::Queueing, Parallelism::Serial);
        assert!(
            !jsonl.contains("\"guard_violation\""),
            "{}: a healthy plant emits no guard violations",
            spec.name
        );
    }
}
