//! Cross-substrate integration: the mesoscopic and microscopic simulators
//! must tell consistent comparative stories and be bit-reproducible.

use adaptive_backpressure::core::Ticks;
use adaptive_backpressure::experiments::{run, Backend, ControllerKind, Probe, Scenario};
use adaptive_backpressure::netgen::{DemandSchedule, Pattern};

fn scenario(backend: Backend, pattern: Pattern, horizon: u64, seed: u64) -> Scenario {
    Scenario::paper(
        DemandSchedule::constant(pattern, Ticks::new(horizon)),
        backend,
        seed,
    )
}

#[test]
fn identical_runs_are_bit_reproducible_on_both_substrates() {
    for backend in [Backend::Queueing, Backend::Microscopic] {
        let s = scenario(backend, Pattern::III, 500, 99);
        let a = run(&s, &ControllerKind::UtilBp, &Probe::none());
        let b = run(&s, &ControllerKind::UtilBp, &Probe::none());
        assert_eq!(a.avg_queuing_time_s, b.avg_queuing_time_s, "{backend}");
        assert_eq!(a.completed, b.completed, "{backend}");
        assert_eq!(a.generated, b.generated, "{backend}");
    }
}

#[test]
fn demand_stream_is_identical_across_controllers() {
    // Same scenario ⇒ same generated vehicle count, whatever the
    // controller does.
    let s = scenario(Backend::Queueing, Pattern::I, 600, 4);
    let a = run(&s, &ControllerKind::UtilBp, &Probe::none());
    let b = run(
        &s,
        &ControllerKind::FixedTime { period: 20 },
        &Probe::none(),
    );
    assert_eq!(a.generated, b.generated);
}

#[test]
fn adaptive_beats_open_loop_on_both_substrates() {
    for backend in [Backend::Queueing, Backend::Microscopic] {
        let s = scenario(backend, Pattern::I, 1500, 77);
        let util = run(&s, &ControllerKind::UtilBp, &Probe::none());
        let fixed = run(
            &s,
            &ControllerKind::FixedTime { period: 20 },
            &Probe::none(),
        );
        assert!(
            util.avg_queuing_time_s < fixed.avg_queuing_time_s,
            "{backend}: UTIL-BP {:.1}s vs fixed-time {:.1}s",
            util.avg_queuing_time_s,
            fixed.avg_queuing_time_s
        );
    }
}

#[test]
fn most_vehicles_complete_under_moderate_demand() {
    // Pattern II is the lightest pattern: after the horizon, the large
    // majority of generated vehicles must have finished their journey on
    // either substrate under either back-pressure controller.
    for backend in [Backend::Queueing, Backend::Microscopic] {
        for kind in [ControllerKind::UtilBp, ControllerKind::CapBp { period: 16 }] {
            let s = scenario(backend, Pattern::II, 1500, 11);
            let r = run(&s, &kind, &Probe::none());
            let rate = r.completed as f64 / r.generated as f64;
            assert!(
                rate > 0.6,
                "{backend} {}: completion rate {rate:.2} too low",
                r.controller
            );
        }
    }
}

#[test]
fn microscopic_journeys_respect_free_flow_physics() {
    // No vehicle can traverse the network faster than free-flow: the mean
    // journey on the microscopic substrate must exceed the 2-road minimum
    // (600 m at 13.89 m/s ≈ 43 s plus one crossing).
    let s = scenario(Backend::Microscopic, Pattern::II, 1200, 3);
    let r = run(&s, &ControllerKind::UtilBp, &Probe::none());
    assert!(
        r.mean_journey_s > 45.0,
        "mean journey {:.1}s breaks physics",
        r.mean_journey_s
    );
}

#[test]
fn probes_work_identically_on_both_substrates() {
    use adaptive_backpressure::core::standard::Approach;
    use adaptive_backpressure::netgen::{GridNetwork, GridSpec};

    let grid = GridNetwork::new(GridSpec::paper());
    let probe = Probe {
        phase_traces: vec![grid.top_right()],
        queue_series: vec![(grid.top_right(), Approach::East.incoming())],
        sample_every: 10,
    };
    for backend in [Backend::Queueing, Backend::Microscopic] {
        let s = scenario(backend, Pattern::I, 400, 8);
        let r = run(&s, &ControllerKind::UtilBp, &probe);
        assert_eq!(r.phase_traces.len(), 1, "{backend}");
        assert_eq!(r.queue_series.len(), 1, "{backend}");
        assert_eq!(r.phase_traces[0].end().index(), 400, "{backend}");
        assert_eq!(r.queue_series[0].len(), 40, "{backend}");
    }
}
