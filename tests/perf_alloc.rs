//! Steady-state allocation bound for both substrates' `step_into` hot
//! paths. Lives in its own integration-test binary because the counting
//! allocator is process-global: any concurrently running test would
//! pollute the count.
//!
//! The step path is designed to be allocation-free at steady state: SoA
//! lanes and the vehicle arena recycle storage, observation/report
//! buffers are reused, waiting is accumulated in place, and backlog
//! entries move (the `Arc<Route>` is never re-cloned on requeue). The
//! only permitted residue is amortized slab growth (the waiting ledger
//! and arena grow to the peak fleet / largest vehicle id), which doubles
//! capacity and therefore vanishes relative to tick count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adaptive_backpressure::core::{SignalController, Tick, Ticks, UtilBp};
use adaptive_backpressure::microsim::{MicroSim, MicroSimConfig};
use adaptive_backpressure::netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a relaxed atomic with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP: u64 = 600;
const MEASURED: u64 = 300;
/// Amortized slab/backlog growth allowance over the measured window —
/// far below one allocation per tick (a regression to per-tick
/// allocation costs hundreds).
const BUDGET: u64 = 40;

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

#[test]
fn steady_state_stepping_stays_within_the_allocation_budget() {
    let g = GridNetwork::new(GridSpec::with_size(3, 3));
    let n = g.topology().num_intersections();

    // --- Microscopic substrate. ---
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig::default(),
    );
    let mut gen = DemandGenerator::new(
        &g,
        DemandConfig::new(DemandSchedule::constant(
            Pattern::II,
            Ticks::new(WARMUP + MEASURED),
        )),
        7,
    );
    let mut arrivals = Vec::new();
    let mut report = adaptive_backpressure::microsim::StepReport::empty();
    let mut k = 0u64;
    for _ in 0..WARMUP {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let micro_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        sim.vehicles_in_network() > 50,
        "the run must carry real load"
    );
    assert!(
        micro_allocs <= BUDGET,
        "microsim: {micro_allocs} allocations over {MEASURED} steady-state ticks \
         (budget {BUDGET}) — a per-tick allocation crept back into the hot path"
    );

    // --- Microscopic substrate, batched fidelity. ---
    // The batched kernel's passes reuse the per-road planar scratch
    // buffers sized with the segmented lane storage, and the counter RNG
    // is stateless — batched stepping must be exactly as allocation-free
    // at steady state as the exact path.
    let mut sim = MicroSim::new(
        g.topology().clone(),
        controllers(n),
        MicroSimConfig {
            fidelity: adaptive_backpressure::microsim::Fidelity::Batched,
            ..MicroSimConfig::default()
        },
    );
    let mut gen = DemandGenerator::new(
        &g,
        DemandConfig::new(DemandSchedule::constant(
            Pattern::II,
            Ticks::new(WARMUP + MEASURED),
        )),
        7,
    );
    let mut k = 0u64;
    for _ in 0..WARMUP {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let batched_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        sim.vehicles_in_network() > 50,
        "the run must carry real load"
    );
    assert!(
        batched_allocs <= BUDGET,
        "microsim batched: {batched_allocs} allocations over {MEASURED} steady-state ticks \
         (budget {BUDGET}) — the batch kernel must reuse its scratch buffers"
    );

    // --- Queueing substrate. ---
    let mut sim = QueueSim::new(
        g.topology().clone(),
        controllers(n),
        QueueSimConfig::paper_exact(),
    );
    let mut gen = DemandGenerator::new(
        &g,
        DemandConfig::new(DemandSchedule::constant(
            Pattern::II,
            Ticks::new(WARMUP + MEASURED),
        )),
        7,
    );
    let mut report = adaptive_backpressure::queueing::StepReport::empty();
    let mut k = 0u64;
    for _ in 0..WARMUP {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        arrivals.clear();
        gen.poll_into(&g, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut report);
        k += 1;
    }
    let queueing_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(sim.total_served() > 0, "the run must carry real load");
    assert!(
        queueing_allocs <= BUDGET,
        "queueing: {queueing_allocs} allocations over {MEASURED} steady-state ticks \
         (budget {BUDGET}) — a per-tick allocation crept back into the hot path"
    );

    // --- Scenario engine with recording off. ---
    // The telemetry plane's zero-cost-when-off claim, measured: with the
    // `NullRecorder` explicitly installed (the emission sites are gated
    // on its cached `enabled()`), the engine's steady-state step adds no
    // allocations of its own on top of the substrate budget above.
    let mut spec = adaptive_backpressure::scenario::builtin("paper-grid").expect("builtin exists");
    spec.set_horizon(Ticks::new(WARMUP + MEASURED));
    let mut engine = adaptive_backpressure::scenario::ScenarioEngine::new(
        spec,
        adaptive_backpressure::scenario::EngineConfig::new(
            adaptive_backpressure::scenario::Backend::Queueing,
        ),
        &|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>,
    )
    .expect("spec validates");
    engine.set_recorder(Box::new(adaptive_backpressure::telemetry::NullRecorder));
    for _ in 0..WARMUP {
        engine.step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        engine.step();
    }
    let engine_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        engine.demand_generated() > 0,
        "the run must carry real load"
    );
    assert!(
        engine_allocs <= BUDGET,
        "engine+NullRecorder: {engine_allocs} allocations over {MEASURED} steady-state ticks \
         (budget {BUDGET}) — recording-off must stay allocation-free per tick"
    );
}
