//! Rush hour on the paper's 3×3 grid: Pattern IV ("single heavy" — a
//! surge from the north) under four controllers, on the microscopic
//! simulator. Prints a comparison table like the paper's Table III row.
//!
//! ```sh
//! cargo run --release --example grid_rush_hour
//! ```
//!
//! Use `--release`: thirty simulated minutes of microscopic traffic per
//! controller is slow in debug builds.

use adaptive_backpressure::core::Ticks;
use adaptive_backpressure::experiments::{run_many, Backend, ControllerKind, Probe, Scenario};
use adaptive_backpressure::metrics::TextTable;
use adaptive_backpressure::netgen::{DemandSchedule, Pattern};

fn main() {
    let half_hour = Ticks::new(1800);
    let scenario = Scenario::paper(
        DemandSchedule::constant(Pattern::IV, half_hour),
        Backend::Microscopic,
        2020,
    );

    let contenders = vec![
        ControllerKind::UtilBp,
        ControllerKind::CapBp { period: 16 },
        ControllerKind::OriginalBp { period: 16 },
        ControllerKind::FixedTime { period: 16 },
        ControllerKind::LongestQueueFirst { period: 10 },
        ControllerKind::Actuated {
            min_green: 5,
            max_green: 40,
        },
    ];

    println!(
        "— rush hour: Pattern IV (north surge), 3×3 grid, microscopic, {} s —\n",
        half_hour.count()
    );
    // All controllers see the exact same arrival stream (same seed).
    let results = run_many(&scenario, &contenders, &Probe::none());

    let mut table = TextTable::new([
        "Controller",
        "Avg queuing [s]",
        "Avg journey [s]",
        "Completed",
        "Generated",
    ]);
    for r in &results {
        table.push_row([
            r.controller.clone(),
            format!("{:.1}", r.avg_queuing_time_s),
            format!("{:.1}", r.mean_journey_s),
            r.completed.to_string(),
            r.generated.to_string(),
        ]);
    }
    println!("{}", table.render());

    let util = &results[0];
    let best_other = results[1..]
        .iter()
        .min_by(|a, b| a.avg_queuing_time_s.total_cmp(&b.avg_queuing_time_s))
        .expect("non-empty");
    println!(
        "UTIL-BP vs best baseline ({}): {:+.1}%",
        best_other.controller,
        (best_other.avg_queuing_time_s - util.avg_queuing_time_s) / best_other.avg_queuing_time_s
            * 100.0
    );
}
