//! Quickstart: run the paper's UTIL-BP controller on a single signalized
//! intersection for ten simulated minutes and print what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adaptive_backpressure::core::{SignalController, Tick, Ticks, UtilBp};
use adaptive_backpressure::netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

fn main() {
    // A 1×1 "grid" is exactly the paper's Fig. 1 intersection with four
    // boundary entries and four exits (W = 120, µ = 1 vehicle/s).
    let grid = GridNetwork::new(GridSpec::with_size(1, 1));

    // One decentralized controller per intersection — here, just one.
    let controllers: Vec<Box<dyn SignalController>> = vec![Box::new(UtilBp::paper())];

    // The paper-exact store-and-forward substrate (Eq. 2 dynamics).
    let mut sim = QueueSim::new(
        grid.topology().clone(),
        controllers,
        QueueSimConfig::paper_exact(),
    );

    // Pattern I demand: heavy from the north (3 s inter-arrival), lighter
    // from the other sides, with the paper's Table I turning mix.
    let horizon = Ticks::new(600);
    let mut demand = DemandGenerator::new(
        &grid,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, horizon)),
        42,
    );

    let mut served = 0u64;
    for k in 0..horizon.count() {
        let arrivals = demand.poll(&grid, Tick::new(k));
        let report = sim.step(arrivals);
        served += report.served as u64;
    }

    let ledger = sim.ledger();
    println!("— quickstart: UTIL-BP on one intersection, Pattern I, 600 s —");
    println!("vehicles generated : {}", demand.generated());
    println!("junction services  : {served}");
    println!("journeys completed : {}", ledger.completed());
    println!(
        "avg queuing time   : {:.1} s (including vehicles still queued)",
        sim.mean_waiting_including_active()
    );
    println!(
        "avg journey time   : {:.1} s over completed vehicles",
        ledger.journey_stats().mean()
    );
}
