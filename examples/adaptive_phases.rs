//! Watch UTIL-BP adapt: a demand surge arrives on one approach and the
//! controller stretches that phase, then snaps back once the surge
//! clears — the varying-length control phases of the paper's Algorithm 1.
//!
//! The same surge is also run under fixed-length CAP-BP for contrast.
//!
//! ```sh
//! cargo run --example adaptive_phases
//! ```

use adaptive_backpressure::baselines::CapBp;
use adaptive_backpressure::core::standard::{self, Approach, Turn};
use adaptive_backpressure::core::{
    IntersectionView, PhaseDecision, QueueObservation, SignalController, Tick, Ticks, UtilBp,
};
use adaptive_backpressure::metrics::PhaseTrace;

/// Replays a scripted queue scenario against a controller and records the
/// phase trace. The script: balanced light traffic, then a 40-vehicle
/// surge on the east-straight movement at t = 60 s that drains at the
/// service rate while green.
fn replay(controller: &mut dyn SignalController) -> PhaseTrace {
    let layout = standard::four_way(120, 1.0);
    let mut obs = QueueObservation::zeros(&layout);
    let east_straight = standard::link_id(Approach::East, Turn::Straight);
    let north_straight = standard::link_id(Approach::North, Turn::Straight);

    // Light background queues.
    obs.set_movement(north_straight, 3);
    obs.set_movement(standard::link_id(Approach::South, Turn::Straight), 2);
    obs.set_movement(east_straight, 2);

    let mut trace = PhaseTrace::new(controller.name());
    for k in 0..240u64 {
        if k == 60 {
            // The surge hits.
            obs.set_movement(east_straight, 40);
        }
        let view = IntersectionView::new(&layout, &obs).expect("same layout");
        let decision = controller.decide(&view, Tick::new(k));
        trace.record(Tick::new(k), decision);

        // Toy plant: a green movement drains at µ = 1 vehicle per second;
        // the background approaches trickle-refill every 15 s.
        if let PhaseDecision::Control(phase) = decision {
            for &link in layout.phase(phase).links() {
                let q = obs.movement(link);
                obs.set_movement(link, q.saturating_sub(1));
            }
        }
        if k % 15 == 0 {
            let q = obs.movement(north_straight);
            obs.set_movement(north_straight, q + 1);
        }
    }
    trace
}

fn summarize(trace: &PhaseTrace) {
    println!("controller: {}", trace.name());
    let values = trace.expand();
    let line: String = values
        .chunks(2)
        .map(|c| char::from_digit(c[0] as u32, 10).unwrap_or('?'))
        .collect();
    println!("  {line}");
    println!(
        "  switches: {} | ambers: {} | green on c3 (east-west): {} s",
        trace.num_switches(),
        trace.num_transitions(),
        trace.time_at(3).count(),
    );
    let dwells = trace.run_lengths(3);
    let longest = dwells.iter().map(|d| d.count()).max().unwrap_or(0);
    println!("  longest single c3 green: {longest} s\n");
}

fn main() {
    println!("— adaptive phases: 40-vehicle surge on the east approach at t=60 s —\n");
    println!("(digits are the applied phase per 2 s; 0 = amber)\n");

    let mut util = UtilBp::paper();
    let util_trace = replay(&mut util);
    summarize(&util_trace);

    let mut cap = CapBp::new(Ticks::new(16));
    let cap_trace = replay(&mut cap);
    summarize(&cap_trace);

    println!(
        "UTIL-BP holds the surge phase until the pressure difference clears; \
         CAP-BP must slice the same work into fixed 16 s slots, paying an \
         amber after every slice."
    );
}
