//! The model is not hard-wired to the paper's four-way junction: build a
//! custom T-intersection (three arms, no left turn from the minor road),
//! wire it into a network by hand, and control it with UTIL-BP.
//!
//! ```sh
//! cargo run --example custom_intersection
//! ```

use adaptive_backpressure::core::{IntersectionLayout, SignalController, Tick, UtilBp};
use adaptive_backpressure::metrics::VehicleId;
use adaptive_backpressure::netgen::{Arrival, IntersectionId, NetworkTopology, Road, Route};
use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};

fn main() {
    // ── 1. The junction ────────────────────────────────────────────────
    // A T-junction: a west–east major road meets a stub from the south.
    //   incoming: 0 = from west, 1 = from east, 2 = from south
    //   outgoing: 0 = to west,   1 = to east,   2 = to south
    let mut b = IntersectionLayout::builder();
    let from_west = b.add_incoming();
    let from_east = b.add_incoming();
    let from_south = b.add_incoming();
    let to_west = b.add_outgoing(60);
    let to_east = b.add_outgoing(60);
    let to_south = b.add_outgoing(40);

    // Feasible movements (no U-turns; minor road may only turn).
    let we = b.add_link(from_west, to_east, 1.0); // major straight →
    let ws = b.add_link(from_west, to_south, 0.5); // major right turn
    let ew = b.add_link(from_east, to_west, 1.0); // major straight ←
    let es = b.add_link(from_east, to_south, 0.5); // major left turn
    let sw = b.add_link(from_south, to_west, 0.5); // minor left
    let se = b.add_link(from_south, to_east, 0.5); // minor right

    // Two phases: major road flows, or the minor stub clears.
    let major = b.add_phase(&[we, ws, ew, es]);
    let minor = b.add_phase(&[sw, se]);
    let layout = b.build().expect("T-junction layout is consistent");
    println!(
        "T-junction: {} movements, {} phases (major={major}, minor={minor})",
        layout.num_links(),
        layout.num_phases(),
    );

    // ── 2. The network ─────────────────────────────────────────────────
    // One intersection, an entry and an exit road per arm.
    let iid = IntersectionId::new(0);
    let mut net = NetworkTopology::builder();
    let mut entries = Vec::new();
    for (arm, name) in [
        (from_west, "west"),
        (from_east, "east"),
        (from_south, "south"),
    ] {
        entries.push(net.add_road(Road::new(
            format!("entry-{name}"),
            None,
            Some((iid, arm)),
            200.0,
            60,
        )));
    }
    for (arm, capacity, name) in [
        (to_west, 60, "west"),
        (to_east, 60, "east"),
        (to_south, 40, "south"),
    ] {
        net.add_road(Road::new(
            format!("exit-{name}"),
            Some((iid, arm)),
            None,
            200.0,
            capacity,
        ));
    }
    net.add_intersection("T", layout, entries.clone(), {
        // Outgoing roads were added after the three entries, ids 3..6.
        (3..6)
            .map(adaptive_backpressure::netgen::RoadId::new)
            .collect()
    });
    let topology = net.build().expect("hand-wired topology validates");

    // ── 3. Drive it ────────────────────────────────────────────────────
    let controllers: Vec<Box<dyn SignalController>> = vec![Box::new(UtilBp::paper())];
    let mut sim = QueueSim::new(topology, controllers, QueueSimConfig::paper_exact());

    // Deterministic demand: the major road streams both ways; every 9 s a
    // vehicle pops out of the minor stub.
    let mut next_id = 0u64;
    let mut arrival = |entry: usize, link| {
        let id = VehicleId::new(next_id);
        next_id += 1;
        Arrival {
            vehicle: id,
            tick: Tick::ZERO, // informational; the sim uses the step clock
            route: std::sync::Arc::new(Route::new(entries[entry], vec![(iid, link)])),
        }
    };

    for k in 0..600u64 {
        let mut batch = Vec::new();
        if k % 3 == 0 {
            batch.push(arrival(0, we)); // west → east
        }
        if k % 4 == 0 {
            batch.push(arrival(1, ew)); // east → west
        }
        if k % 9 == 0 {
            batch.push(arrival(2, if k % 18 == 0 { sw } else { se }));
        }
        sim.step(batch);
    }

    let ledger = sim.ledger();
    println!("vehicles injected  : {next_id}");
    println!("journeys completed : {}", ledger.completed());
    println!(
        "avg queuing time   : {:.1} s",
        sim.mean_waiting_including_active()
    );
    println!(
        "minor-road service : UTIL-BP interleaves the stub's phase whenever \
         its queue pressure wins — no fixed cycle needed"
    );
}
