//! Cross-validate the two simulation substrates: run the same scenario on
//! the paper-exact queueing model and on the microscopic simulator, for
//! UTIL-BP and CAP-BP, and compare the orderings.
//!
//! The absolute numbers differ (the microscopic substrate has startup
//! lost time, finite discharge headways, and travel times), but the
//! *comparative* conclusions should agree — that agreement is what lets
//! the fast substrate be used for sweeps.
//!
//! ```sh
//! cargo run --release --example substrate_cross_check
//! ```

use adaptive_backpressure::core::Ticks;
use adaptive_backpressure::experiments::{run_many, Backend, ControllerKind, Probe, Scenario};
use adaptive_backpressure::metrics::TextTable;
use adaptive_backpressure::netgen::{DemandSchedule, Pattern};

fn main() {
    let horizon = Ticks::new(1800);
    let contenders = vec![
        ControllerKind::UtilBp,
        ControllerKind::CapBp { period: 16 },
        ControllerKind::FixedTime { period: 16 },
    ];

    let mut table = TextTable::new([
        "Controller",
        "Queueing (paper model) [s]",
        "Microscopic (SUMO-like) [s]",
    ]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    for pattern in [Pattern::I, Pattern::II] {
        let queueing = run_many(
            &Scenario::paper(
                DemandSchedule::constant(pattern, horizon),
                Backend::Queueing,
                2020,
            ),
            &contenders,
            &Probe::none(),
        );
        let micro = run_many(
            &Scenario::paper(
                DemandSchedule::constant(pattern, horizon),
                Backend::Microscopic,
                2020,
            ),
            &contenders,
            &Probe::none(),
        );
        for (q, m) in queueing.iter().zip(&micro) {
            let label = format!("P{pattern} {}", q.controller);
            table.push_row([
                label.clone(),
                format!("{:.1}", q.avg_queuing_time_s),
                format!("{:.1}", m.avg_queuing_time_s),
            ]);
            rows.push((label, q.avg_queuing_time_s, m.avg_queuing_time_s));
        }
    }

    println!(
        "— substrate cross-check ({} s per run) —\n",
        horizon.count()
    );
    println!("{}", table.render());
    println!(
        "\nBoth substrates should agree that the adaptive controller beats the \
         open-loop one; absolute seconds differ by design (see DESIGN.md)."
    );
}
